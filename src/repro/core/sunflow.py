"""The Sunflow scheduling algorithm (paper §4, Algorithm 1).

Sunflow schedules optical circuits for Coflows under the not-all-stop
switch model.  Its two design rules:

* **intra-Coflow non-preemption** — once a circuit is reserved for a flow
  it is held until the reservation ends; in the single-Coflow case each
  flow needs exactly one setup, which is the minimum possible switching
  count;
* **inter-Coflow priority** — Coflows are scheduled one after another, in
  priority order, against the *same* Port Reservation Table.  A later
  (lower-priority) Coflow can only claim port time the earlier ones left
  free, so it can never block them.  Its reservations may be truncated to
  fit the free gaps (Algorithm 1 line 19), in which case the flow pays an
  extra ``δ`` to resume later — this is the only way a flow ever needs more
  than one setup.

The scheduler is an *offline* planner: given demands (expressed as
remaining processing time per circuit) and a start time, it fills a PRT.
The discrete-event simulators in :mod:`repro.sim` call it at every Coflow
arrival/completion to (re)plan, then execute the plan until the next event.

Implementation note — Algorithm 1 as printed rescans every remaining
demand entry at every circuit-release time, which is O(|C|²) with a large
constant.  This module implements an equivalent event-driven form: an
entry's feasibility (both ports free, gap ≥ δ) can only change when a
reservation on one of *its own* ports is released, so entries wait in
per-port pending sets and are re-attempted — in the same global
consideration order — exactly when one of their ports frees up.  The
literal pseudocode is kept as :func:`schedule_demand_reference` and the
test suite checks the two produce identical reservations.
"""

from __future__ import annotations

import bisect
import enum
import heapq
from array import array
import itertools
import math
import operator
import os
import random
import warnings
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.coflow import Coflow
from repro.core.demand import PackedDemand
from repro.core.plan_cache import PlanCache, PlanProbe
from repro.core.prt import (
    PRT_LAYOUT_VERSION,
    PortReservationTable,
    Reservation,
    TIME_EPS,
)
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA

# The optional compiled planner (src/repro/_native.c): the event-driven
# scheduling loop below, running directly against the PRT's per-port
# boundary buffers.  Import-time detection — a missing build, or one
# compiled against a different PRT storage layout, simply leaves the
# pure-Python loop in charge.
try:
    from repro import _native
except ImportError:  # pragma: no cover - depends on the build environment
    _native = None
if _native is not None and getattr(_native, "LAYOUT_VERSION", None) != PRT_LAYOUT_VERSION:
    _native = None  # pragma: no cover - stale build artifact

#: Same environment variable :mod:`repro.kernels` dispatches on; read
#: directly (rather than through ``repro.kernels.active_backend``) so the
#: pure-Python planner keeps working without numpy installed.
_BACKEND_ENV = "REPRO_KERNEL"

_NAN = float("nan")

_warned_native_missing = False


def native_planner_available() -> bool:
    """True when the compiled planner is importable and layout-compatible."""
    return _native is not None


def planner_backend() -> str:
    """Which ``schedule_demand`` implementation the current environment
    selects: ``"native"`` (compiled kernel) or ``"python"``.

    ``REPRO_KERNEL=native`` requests the compiled kernel; when the
    extension is not built (or was built against a different PRT layout)
    the answer is ``"python"`` — the fallback is transparent apart from a
    one-time :class:`RuntimeWarning`.
    """
    return "native" if _use_native() else "python"


def _use_native() -> bool:
    # Same normalization as ``repro.kernels.active_backend``; unknown
    # values are *that* function's job to reject.
    if os.environ.get(_BACKEND_ENV, "").strip().lower() != "native":
        return False
    if _native is None:
        global _warned_native_missing
        if not _warned_native_missing:
            _warned_native_missing = True
            warnings.warn(
                "REPRO_KERNEL=native requested but the repro._native "
                "extension is not available; using the pure-Python planner "
                "(build it with `python setup.py build_ext --inplace` or by "
                "installing the package with a C compiler present)",
                RuntimeWarning,
                stacklevel=3,
            )
        return False
    return True


def _pack_entries(
    entries: "List[_Entry]",
    established: Mapping[Tuple[int, int], Tuple[float, Optional[float]]],
) -> List[Tuple[int, int, float, bool, float, float]]:
    """Flatten entries for the native kernel.

    One 6-tuple per entry, in consideration order (entry list position ==
    ``order_index``, an invariant of :meth:`SunflowScheduler._make_entries`):
    ``(src, dst, remaining, has_established, setup_left, anchor)`` with a
    NaN anchor encoding "no anchor" (reservation end times are never NaN).
    """
    if not established:
        return [(e.src, e.dst, e.remaining, False, 0.0, _NAN) for e in entries]
    packed = []
    get = established.get
    for e in entries:
        est = get((e.src, e.dst))
        if est is None:
            packed.append((e.src, e.dst, e.remaining, False, 0.0, _NAN))
        else:
            setup_left, anchor = est
            packed.append(
                (
                    e.src,
                    e.dst,
                    e.remaining,
                    True,
                    setup_left,
                    _NAN if anchor is None else anchor,
                )
            )
    return packed


def _pack_demand(
    demand_times: Mapping[Tuple[int, int], float],
    established: Mapping[Tuple[int, int], Tuple[float, Optional[float]]],
) -> List[Tuple[int, int, float, bool, float, float]]:
    """Fused ``_make_entries`` + ``_pack_entries`` for the native kernel's
    hot path (ORDERED_PORT order, no quantum): the sorted dict items *are*
    the consideration order, so the packed tuples are built straight from
    them without materializing ``_Entry`` objects first."""
    if established:
        get = established.get
        packed = []
        for (src, dst), p in sorted(demand_times.items()):
            if p > TIME_EPS:
                est = get((src, dst))
                if est is None:
                    packed.append((src, dst, p, False, 0.0, _NAN))
                else:
                    setup_left, anchor = est
                    packed.append(
                        (
                            src,
                            dst,
                            p,
                            True,
                            setup_left,
                            _NAN if anchor is None else anchor,
                        )
                    )
        return packed
    return [
        (src, dst, p, False, 0.0, _NAN)
        for (src, dst), p in sorted(demand_times.items())
        if p > TIME_EPS
    ]


#: Sort key for attempt batches; C-level attrgetter keeps the hot loop lean.
_ORDER_KEY = operator.attrgetter("order_index")


def _reservation_start(reservation: Reservation) -> float:
    return reservation.start


class ReservationOrder(enum.Enum):
    """Order in which Algorithm 1 considers the demand entries of a Coflow.

    Lemma 1 holds for *any* order; §5.3.1 measures the (tiny) performance
    difference between these three.
    """

    #: Sort by (src, dst) port label — the paper's default.
    ORDERED_PORT = "ordered_port"
    #: Uniformly random shuffle.
    RANDOM = "random"
    #: Largest remaining demand first.
    SORTED_DEMAND = "sorted_demand"


@dataclass
class CoflowSchedule:
    """The planned reservations for one Coflow.

    ``completion_time`` is absolute (same clock as the PRT); the Coflow
    Completion Time is ``completion_time - arrival_time``, computed by the
    caller which knows the arrival.
    """

    coflow_id: int
    start_time: float
    reservations: List[Reservation] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        if not self.reservations:
            return self.start_time
        return max(r.end for r in self.reservations)

    @property
    def num_setups(self) -> int:
        """Number of circuit establishments (reservations paying a setup)."""
        return sum(1 for r in self.reservations if r.setup > 0)

    def index_at_or_after(self, t: float) -> int:
        """First index whose reservation starts at/after ``t - TIME_EPS``.

        Reservations are appended in non-decreasing start order, so the
        list is bisectable; simulators use this to visit only the
        reservations overlapping an event window instead of scanning the
        whole plan.
        """
        return bisect.bisect_left(self.reservations, t - TIME_EPS, key=_reservation_start)

    def first_start(self) -> float:
        """Start of the earliest reservation (inf for an empty plan)."""
        return self.reservations[0].start if self.reservations else float("inf")

    @property
    def makespan(self) -> float:
        return self.completion_time - self.start_time


#: Circuits already configured for a Coflow at the schedule origin: either
#: a set (setup complete), a mapping ``circuit -> remaining setup seconds``,
#: or a mapping ``circuit -> (remaining setup, anchor end)`` where the
#: anchor is the absolute end time the circuit's continuation was already
#: planned to reach.  The anchor lets a replan reproduce the prior plan's
#: end *bitwise* (``now + (σ + remaining)`` re-associates floating point),
#: which the incremental simulator relies on to detect unchanged plans.
EstablishedCircuits = Union[
    FrozenSet[Tuple[int, int]],
    Set[Tuple[int, int]],
    Mapping[Tuple[int, int], float],
    Mapping[Tuple[int, int], Tuple[float, float]],
]


def _normalize_established(
    established: Optional[EstablishedCircuits],
) -> Dict[Tuple[int, int], Tuple[float, Optional[float]]]:
    """Normalize to ``{circuit: (remaining setup, anchor end or None)}``."""
    if not established:
        return {}
    if isinstance(established, Mapping):
        normalized: Dict[Tuple[int, int], Tuple[float, Optional[float]]] = {}
        for circuit, value in established.items():
            if isinstance(value, tuple):
                normalized[circuit] = (value[0], value[1])
            else:
                normalized[circuit] = (float(value), None)
        return normalized
    return {circuit: (0.0, None) for circuit in established}


class _Entry:
    """Mutable remaining demand for one circuit while scheduling.

    Identity-hashed (entries live in pending sets); ``__slots__`` because
    the inter-Coflow replay creates one per circuit per replan.

    ``blocked_key`` memoizes a proven fact about the last failed attempt:
    *which* port blocks this circuit.  The port stays covered until the
    blocking reservation ends and cannot release earlier (per-port
    reservations never overlap), so the entry waits in that one port's
    queue and is re-examined exactly when the port frees up.  Skipped
    attempts are exactly the ones that would have failed, so schedules are
    bit-identical with or without the memo.  ``blocked_key`` uses the
    scheduler's integer port-key encoding (input ``p`` → ``2p``, output
    ``p`` → ``2p + 1``).
    """

    __slots__ = ("src", "dst", "remaining", "order_index", "blocked_key")

    def __init__(self, src: int, dst: int, remaining: float, order_index: int = 0) -> None:
        self.src = src
        self.dst = dst
        self.remaining = remaining
        self.order_index = order_index
        self.blocked_key = -1

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"_Entry(src={self.src}, dst={self.dst}, "
            f"remaining={self.remaining}, order_index={self.order_index})"
        )


def make_entries(
    demand_times: Mapping[Tuple[int, int], float],
    order: ReservationOrder,
    rng: random.Random,
    *,
    eps: float = TIME_EPS,
    quantize: Optional[Callable[[float], float]] = None,
) -> List[_Entry]:
    """Demand entries in consideration order — the shared packing helper.

    Both the single-switch :class:`SunflowScheduler` and the K-core
    :class:`repro.core.multicore.MultiCoreSunflowScheduler` delegate here
    (the latter with its byte-denominated ``eps`` and no quantizer), so
    every planner rides the same fast paths:

    * ``ORDERED_PORT`` with no quantizer and a valid
      :class:`~repro.core.demand.PackedDemand` reads the pre-sorted
      packed columns — no per-plan sort at all;
    * ``ORDERED_PORT`` over a plain mapping sorts the raw dict items
      (unique ``(src, dst)`` keys ⇒ key-tuple comparison only);
    * the remaining orders build entries first, then sort (``RANDOM``
      shuffles the canonical order so rng streams stay reproducible).
    """
    if order is ReservationOrder.ORDERED_PORT and quantize is None:
        entries = []
        index = 0
        if isinstance(demand_times, PackedDemand) and demand_times.packed_ok:
            for src, dst, p in demand_times.iter_packed():
                if p > eps:
                    entry = _Entry(src, dst, p)
                    entry.order_index = index
                    index += 1
                    entries.append(entry)
            return entries
        for (src, dst), p in sorted(demand_times.items()):
            if p > eps:
                entry = _Entry(src, dst, p)
                entry.order_index = index
                index += 1
                entries.append(entry)
        return entries
    if quantize is None:
        entries = [
            _Entry(src, dst, p)
            for (src, dst), p in demand_times.items()
            if p > eps
        ]
    else:
        entries = [
            _Entry(src, dst, quantize(p))
            for (src, dst), p in demand_times.items()
            if p > eps
        ]
    if order is ReservationOrder.ORDERED_PORT:
        entries.sort(key=lambda e: (e.src, e.dst))
    elif order is ReservationOrder.RANDOM:
        entries.sort(key=lambda e: (e.src, e.dst))  # canonical base order
        rng.shuffle(entries)
    elif order is ReservationOrder.SORTED_DEMAND:
        entries.sort(key=lambda e: (-e.remaining, e.src, e.dst))
    else:  # pragma: no cover - enum is exhaustive
        raise AssertionError(f"unknown order {order!r}")
    for index, entry in enumerate(entries):
        entry.order_index = index
    return entries


class SunflowScheduler:
    """Plans circuit reservations per Algorithm 1.

    Args:
        delta: circuit reconfiguration delay ``δ`` in seconds.
        order: demand-consideration order (see :class:`ReservationOrder`).
        rng: random source for :attr:`ReservationOrder.RANDOM`; a fresh
            seeded generator is created if omitted, so runs are repeatable.
        quantum: optional approximation knob from §6 — demand processing
            times are rounded *up* to a multiple of ``quantum`` seconds
            before scheduling.  Rounded-up reservations end on a coarse
            grid, so many circuit-release events coincide and the
            scheduling loop runs fewer iterations, at the cost of some
            reserved-but-idle circuit time (the paper: "approximation …
            could reduce the optimality of the resulting schedules").
    """

    def __init__(
        self,
        delta: float = DEFAULT_DELTA,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        rng: Optional[random.Random] = None,
        quantum: Optional[float] = None,
        plan_cache: Optional[PlanCache] = None,
        cache_plans: bool = True,
        cache_scope: Optional[int] = None,
    ) -> None:
        if delta < 0:
            raise ValueError(f"delta must be non-negative, got {delta!r}")
        if quantum is not None and quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum!r}")
        self.delta = delta
        self.order = order
        self.quantum = quantum
        self._rng = rng if rng is not None else random.Random(0)
        #: Gap-signature plan cache (see :mod:`repro.core.plan_cache`);
        #: ``cache_plans=False`` disables it (results are identical either
        #: way — the cache only ever returns what a fresh Algorithm 1 run
        #: would produce bit-for-bit).  A shared instance may be passed in,
        #: which is why the scheduler configuration rides in the key.
        if plan_cache is None and cache_plans:
            plan_cache = PlanCache()
        self.plan_cache = plan_cache if cache_plans else None
        #: ``cache_scope`` namespaces this scheduler's entries inside a
        #: *shared* cache: a K-core fabric shares one PlanCache across its
        #: per-core schedulers, and the gap signatures of two cores are
        #: incomparable (each core has its own PRT), so the core index
        #: rides in the config key.  ``None`` (single-switch) keeps the
        #: historical three-element key.
        self.cache_scope = cache_scope
        if cache_scope is None:
            self._cache_config = (delta, order.value, quantum)
        else:
            self._cache_config = (delta, order.value, quantum, ("core", cache_scope))
        #: Optional :class:`~repro.perf.PerfCounters` sink for the
        #: ``plan.pack`` / ``plan.kernel`` sub-timers; the inter-Coflow
        #: simulator wires its own counters in here so the monolithic
        #: ``plan`` timer decomposes.  Left ``None``, timing is skipped.
        self.perf = None

    # ------------------------------------------------------------------
    # Intra-Coflow scheduling (Algorithm 1, IntraCoflow + MakeReservation)
    # ------------------------------------------------------------------
    def schedule_demand(
        self,
        prt: PortReservationTable,
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
        established: "EstablishedCircuits" = frozenset(),
        cache_probe: "Optional[PlanProbe]" = None,
    ) -> CoflowSchedule:
        """Reserve circuits on ``prt`` for one Coflow's remaining demand.

        Args:
            prt: shared Port Reservation Table; reservations made by
                higher-priority Coflows constrain (and are never violated
                by) this call.
            coflow_id: recorded on every reservation.
            demand_times: ``{(src, dst): remaining processing seconds}``.
                Zero/negative entries are ignored.
            start_time: scheduling clock origin ``t0`` (e.g. the Coflow's
                arrival, or "now" when replanning).
            established: circuits physically configured (or mid-setup) for
                *this Coflow's flows* at ``start_time``.  Either a set of
                circuits (setup fully complete) or a mapping ``circuit →
                remaining setup seconds``; a reservation starting exactly at
                ``start_time`` on such a circuit pays only the remaining
                setup instead of a full ``δ``.
            cache_probe: a :class:`~repro.core.plan_cache.PlanProbe` from
                a lookup the *caller* already performed against
                :attr:`plan_cache` (the cache-aware incremental replanner
                fetches before falling through to a recompute).  When
                given, the internal fetch is skipped — the caller's
                lookup already missed and a second one would double-count
                — and the computed plan is stored under this probe.

        Returns:
            The reservations planned for this Coflow.
        """
        established = _normalize_established(established)

        # Gap-signature cache: replay a prior plan when the planning
        # problem — demand, origin, and the touched ports' occupancy
        # profiles — provably matches one already solved.  Plans with
        # established circuits are exempt: their demand mutates every
        # event (so they could never hit) and their continuations are the
        # incremental replanner's transform-keep path; probing them would
        # be pure signature-capture overhead.  RANDOM order must bypass (a
        # hit would skip the shuffle and desynchronize the rng stream for
        # every later plan).
        cache = self.plan_cache
        probe = cache_probe
        if cache is not None and probe is None and not established:
            if self.order is ReservationOrder.RANDOM:
                cache.note_bypass()
            else:
                cached, probe = cache.fetch(
                    prt,
                    self._cache_config,
                    coflow_id,
                    demand_times,
                    start_time,
                )
                if cached is not None:
                    return CoflowSchedule(
                        coflow_id=coflow_id,
                        start_time=start_time,
                        reservations=cached,
                    )

        schedule = CoflowSchedule(coflow_id=coflow_id, start_time=start_time)
        perf = self.perf
        if _use_native():
            # Compiled twin of ``_plan_python``: the same event loop with
            # verbatim float expressions, mutating the same PRT arrays in
            # place through the buffer protocol.
            fast = (
                self.order is ReservationOrder.ORDERED_PORT
                and self.quantum is None
            )
            if (
                fast
                and isinstance(demand_times, PackedDemand)
                and demand_times.packed_ok
            ):
                # Fused fast path: the Coflow's pre-sorted demand columns
                # go straight to C — filtering, established lookup, and
                # the event loop in one call, no per-plan sort or tuple
                # packing on the Python side.
                srcs, dsts, vals = demand_times.columns
                t0 = perf_counter()
                kept = _native.schedule_demand_packed(
                    prt,
                    Reservation,
                    coflow_id,
                    start_time,
                    self.delta,
                    TIME_EPS,
                    srcs,
                    dsts,
                    vals,
                    established if established else None,
                    schedule.reservations,
                )
                if perf is not None:
                    perf.add_time("plan.kernel", perf_counter() - t0)
                if not kept:
                    return schedule
            else:
                t0 = perf_counter()
                if fast:
                    packed = _pack_demand(demand_times, established)
                else:
                    # RANDOM must still shuffle through ``_make_entries``
                    # so the rng stream advances exactly as in the Python
                    # loop.
                    packed = _pack_entries(
                        self._make_entries(demand_times), established
                    )
                if perf is not None:
                    perf.add_time("plan.pack", perf_counter() - t0)
                if not packed:
                    return schedule
                t0 = perf_counter()
                _native.schedule_demand(
                    prt,
                    Reservation,
                    coflow_id,
                    start_time,
                    self.delta,
                    TIME_EPS,
                    bool(established),
                    packed,
                    schedule.reservations,
                )
                if perf is not None:
                    perf.add_time("plan.kernel", perf_counter() - t0)
        else:
            t0 = perf_counter()
            entries = self._make_entries(demand_times)
            if perf is not None:
                perf.add_time("plan.pack", perf_counter() - t0)
            if not entries:
                return schedule
            t0 = perf_counter()
            self._plan_python(
                prt,
                coflow_id,
                entries,
                start_time,
                established,
                schedule.reservations,
            )
            if perf is not None:
                perf.add_time("plan.kernel", perf_counter() - t0)
        if probe is not None:
            cache.store(probe, schedule.reservations, schedule.first_start())
        return schedule

    def _plan_python(
        self,
        prt: PortReservationTable,
        coflow_id: int,
        entries: "List[_Entry]",
        start_time: float,
        established: Mapping[Tuple[int, int], Tuple[float, Optional[float]]],
        reservations: List[Reservation],
    ) -> None:
        """The event-driven scheduling loop (pure-Python backend).

        Fills ``prt`` and appends to ``reservations`` in place.  The
        compiled kernel (:mod:`repro._native`, selected by
        ``REPRO_KERNEL=native``) is this loop's bit-identical twin — any
        behavioral change here must be mirrored there, and the
        differential suites in ``tests/kernels/test_native_planner.py``
        compare the two reservation-for-reservation.
        """
        outstanding = len(entries)

        # Release events: the scheduling clock.  Seed with the ends of
        # pre-existing reservations (higher-priority Coflows, guard slices)
        # on the ports this Coflow actually uses — releases elsewhere cannot
        # change any entry's feasibility; new ends are pushed as we reserve.
        # Events carry the released circuit so the loop knows which port
        # queues to wake.
        used_inputs = {entry.src for entry in entries}
        used_outputs = {entry.dst for entry in entries}
        seeded: List[Tuple[float, int, int]] = []
        for port in used_inputs:
            seeded.extend(prt.release_events_for_input(port, start_time))
        for port in used_outputs:
            seeded.extend(prt.release_events_for_output(port, start_time))
        # A circuit touching both a used input and a used output is seeded
        # twice; dedupe so the event heap stays minimal.
        events: List[Tuple[float, int, int]] = list(set(seeded))
        heapq.heapify(events)

        # Blocked entries wait in per-port queues, sorted by consideration
        # order.  Port keys are ints — input ``p`` → ``2p``, output ``p`` →
        # ``2p + 1`` — which hash and compare faster than tuples in the hot
        # sets below.  An entry sits in the queue of the one port *proven*
        # to block it (``_Entry.blocked_key``) and is re-examined exactly
        # when that port releases; releases of its other port in between
        # are guaranteed-failure attempts in the reference implementation,
        # so skipping them cannot change the schedule (the ``TIME_EPS``
        # batch window below absorbs the case where both ports release
        # within tolerance of each other).
        waiting: Dict[int, List[_Entry]] = {}

        # The loop below is the hottest code in the repository: every
        # binding it touches per examination is a local.  ``examine`` is
        # ``_make_reservation`` inlined — the covering probes, the
        # ``_next_start`` pair behind ``next_reserved_time``, and the
        # journal insert all run against the PRT's raw per-port boundary
        # arrays (same package; the layout is the module contract of
        # :mod:`repro.core.prt`).  Float expressions are kept verbatim
        # from ``_make_reservation`` so the two produce bit-identical
        # reservations — the dense-demand fuzz tests compare them.
        in_bounds_map = prt._in_bounds
        in_refs_map = prt._in_refs
        out_bounds_map = prt._out_bounds
        out_refs_map = prt._out_refs
        journal = prt._reservations
        ends = prt._ends
        release_of_block = prt.release_of_block
        eps = TIME_EPS
        br = bisect.bisect_right
        heappush = heapq.heappush
        insort = bisect.insort
        delta = self.delta
        inf = float("inf")
        make_array = array
        wget = waiting.get
        res_new = Reservation.__new__
        res_cls = Reservation

        def enqueue(entry: _Entry) -> None:
            """File an entry under the port recorded in ``blocked_key``."""
            bucket = waiting.get(entry.blocked_key)
            if bucket is None:
                waiting[entry.blocked_key] = [entry]
            elif bucket[-1].order_index < entry.order_index:
                bucket.append(entry)
            else:
                insort(bucket, entry, key=_ORDER_KEY)

        def reattach(key: int, suffix: List[_Entry]) -> None:
            """Put an unexamined (still sorted) queue suffix back to wait."""
            bucket = waiting.get(key)
            if bucket is None:
                waiting[key] = suffix
            else:
                # Entries moved onto this port during the same batch; both
                # runs are sorted, so Timsort's galloping merge combines
                # them in O(n) C-level key calls (order indices are unique
                # within a plan, so stability never matters).
                suffix.extend(bucket)
                suffix.sort(key=_ORDER_KEY)
                waiting[key] = suffix

        def examine(
            entry: _Entry, t: float, taken: Set[int], origin: bool
        ) -> None:
            """Attempt one entry whose ports are not yet taken this batch
            (``_make_reservation`` plus ``PortReservationTable._insert``,
            inlined).

            Each covering probe's bisect index is reused twice over: with
            the port free at ``t`` it already points at the port's next
            reserved start (no boundary lies in ``(t - eps, t + eps]``
            except possibly a prior end, which the probe skipped past — a
            start there would have flipped the parity), and it equals the
            boundary insertion point ``_insert`` would recompute.  A
            placement therefore costs two bisects total.  The overlap
            check is skipped outright: ``[t, end)`` is proven to sit
            inside a free gap on both ports (``end <= t_next`` up to the
            tolerated ``eps`` anchor snap), which is exactly the condition
            ``_insert`` re-verifies."""
            nonlocal outstanding
            src = entry.src
            dst = entry.dst
            teps = t + eps
            # Covering probes: one bisect over raw boundary doubles; odd
            # parity means the port is taken and the entry waits it out.
            ib = in_bounds_map.get(src)
            if ib:
                ki = br(ib, teps)
                if ki & 1:
                    entry.blocked_key = key = src * 2
                    bucket = wget(key)
                    if bucket is None:
                        waiting[key] = [entry]
                    elif bucket[-1].order_index < entry.order_index:
                        bucket.append(entry)
                    else:
                        insort(bucket, entry, key=_ORDER_KEY)
                    return
            else:
                ki = 0
            ob = out_bounds_map.get(dst)
            if ob:
                ko = br(ob, teps)
                if ko & 1:
                    entry.blocked_key = key = dst * 2 + 1
                    bucket = wget(key)
                    if bucket is None:
                        waiting[key] = [entry]
                    elif bucket[-1].order_index < entry.order_index:
                        bucket.append(entry)
                    else:
                        insort(bucket, entry, key=_ORDER_KEY)
                    return
            else:
                ko = 0
            # Both ports free: the usable gap runs to the next reserved
            # start on either port (``next_reserved_time``, answered by
            # the probe indices).
            t_next = inf
            if ib and ki < len(ib):
                t_next = ib[ki]
            if ob and ko < len(ob) and ob[ko] < t_next:
                t_next = ob[ko]
            anchor = None
            # ``origin`` is the per-batch precomputation of
            # ``established and abs(t - start_time) <= eps`` — every
            # examination in a batch shares ``t``, so hoisting the float
            # compare out of the hot path cannot change the outcome.
            if origin and (src, dst) in established:
                setup_left, anchor = established[(src, dst)]
                setup = setup_left if setup_left < delta else delta
            else:
                setup = delta
            max_length = t_next - t
            if max_length <= setup + eps:
                # Gap cannot fit even the reconfiguration (Algorithm 1
                # line 19): infeasible until the blocker releases.
                _, on_input = release_of_block(src, dst, t, t_next)
                entry.blocked_key = key = src * 2 if on_input else dst * 2 + 1
                bucket = wget(key)
                if bucket is None:
                    waiting[key] = [entry]
                elif bucket[-1].order_index < entry.order_index:
                    bucket.append(entry)
                else:
                    insort(bucket, entry, key=_ORDER_KEY)
                return
            desired_length = setup + entry.remaining
            if desired_length < max_length:
                length = desired_length
                end = t + length
                if anchor is not None and abs(end - anchor) <= eps:
                    end = anchor
            else:
                length = max_length
                end = t_next
            # Direct slot stores instead of the dataclass constructor: the
            # gap check above already proved what ``__post_init__`` would
            # re-verify (``end > t`` and ``setup`` within the length, both
            # by ``max_length > setup + eps``).
            reservation = res_new(res_cls)
            reservation.start = t
            reservation.end = end
            reservation.src = src
            reservation.dst = dst
            reservation.coflow_id = coflow_id
            reservation.setup = setup
            idx = len(journal)
            if ib is None:
                ib = in_bounds_map[src] = make_array("d")
                in_refs = in_refs_map[src] = make_array("q")
            else:
                in_refs = in_refs_map[src]
            ib.insert(ki, end)
            ib.insert(ki, t)
            in_refs.insert(ki >> 1, idx)
            if ob is None:
                ob = out_bounds_map[dst] = make_array("d")
                out_refs = out_refs_map[dst] = make_array("q")
            else:
                out_refs = out_refs_map[dst]
            ob.insert(ko, end)
            ob.insert(ko, t)
            out_refs.insert(ko >> 1, idx)
            ends.append(end)
            prt._ends_sorted = None
            journal.append(reservation)
            reservations.append(reservation)
            taken.add(src * 2)
            taken.add(dst * 2 + 1)
            heappush(events, (end, src, dst))
            left = desired_length - length
            entry.remaining = left
            if left <= eps:
                outstanding -= 1
            else:
                # Truncated: the entry's own reservation covers its
                # ports until it ends — wait out its own input port.
                entry.blocked_key = key = src * 2
                bucket = wget(key)
                if bucket is None:
                    waiting[key] = [entry]
                elif bucket[-1].order_index < entry.order_index:
                    bucket.append(entry)
                else:
                    insort(bucket, entry, key=_ORDER_KEY)

        # First pass: every entry, in consideration order, at the origin.
        taken: Set[int] = set()
        has_established = bool(established)
        origin = has_established
        for entry in entries:
            key = entry.src * 2
            if key in taken:
                entry.blocked_key = key
                enqueue(entry)
                continue
            key = entry.dst * 2 + 1
            if key in taken:
                entry.blocked_key = key
                enqueue(entry)
                continue
            examine(entry, start_time, taken, origin)

        heappop = heapq.heappop
        wpop = waiting.pop
        while outstanding > 0:
            if not events:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t, esrc, edst = heappop(events)
            horizon = t + eps
            origin = has_established and abs(t - start_time) <= eps
            if events and events[0][0] <= horizon:
                # Several circuits release within tolerance: collect the
                # whole batch of freed port keys.
                released: Set[int] = {esrc * 2, edst * 2 + 1}
                while events and events[0][0] <= horizon:
                    _, src, dst = heappop(events)
                    released.add(src * 2)
                    released.add(dst * 2 + 1)
                queues: List[Tuple[int, List[_Entry]]] = []
                for key in released:
                    bucket = wpop(key, None)
                    if bucket:
                        queues.append((key, bucket))
                if not queues:
                    continue
            else:
                # Fast path (the common case): exactly one circuit
                # released, so at most its two port queues wake up — no
                # batch set needed.  Buckets in ``waiting`` are never
                # empty, so popping suffices.
                q1 = wpop(esrc * 2, None)
                q2 = wpop(edst * 2 + 1, None)
                if q1 is None:
                    if q2 is None:
                        continue
                    queues = [(edst * 2 + 1, q2)]
                elif q2 is None:
                    queues = [(esrc * 2, q1)]
                else:
                    queues = [(esrc * 2, q1), (edst * 2 + 1, q2)]
            taken = set()
            if len(queues) == 1:
                # Fast path: one port queue woke up.  Examine entries in
                # order until the port is taken again; the untouched suffix
                # is provably blocked until the new reservation ends, so it
                # goes back to waiting wholesale.
                key, queue = queues[0]
                size = len(queue)
                i = 0
                while i < size and key not in taken:
                    entry = queue[i]
                    i += 1
                    other = entry.dst * 2 + 1 if key & 1 == 0 else entry.src * 2
                    if other in taken:
                        entry.blocked_key = other
                        enqueue(entry)
                    else:
                        examine(entry, t, taken, origin)
                if i < size:
                    reattach(key, queue[i:] if i else queue)
            else:
                # Several ports released within tolerance: interleave their
                # queues so entries are still examined in global
                # consideration order.
                ptrs = [0] * len(queues)
                heads = [
                    (queue[0].order_index, j)
                    for j, (_, queue) in enumerate(queues)
                ]
                heapq.heapify(heads)
                while heads:
                    _, j = heappop(heads)
                    key, queue = queues[j]
                    i = ptrs[j]
                    if key in taken:
                        # Port re-taken this batch: the rest of this queue
                        # is provably blocked; leave it parked wholesale.
                        reattach(key, queue[i:] if i else queue)
                        continue
                    entry = queue[i]
                    i += 1
                    ptrs[j] = i
                    if i < len(queue):
                        heappush(heads, (queue[i].order_index, j))
                    other = entry.dst * 2 + 1 if key & 1 == 0 else entry.src * 2
                    if other in taken:
                        entry.blocked_key = other
                        enqueue(entry)
                    else:
                        examine(entry, t, taken, origin)

    def schedule_coflow(
        self,
        coflow: Coflow,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        prt: Optional[PortReservationTable] = None,
        start_time: Optional[float] = None,
    ) -> CoflowSchedule:
        """Convenience wrapper: schedule a whole :class:`Coflow` from scratch.

        Uses the Coflow's arrival time as the schedule origin unless
        ``start_time`` is given, and a fresh PRT unless one is supplied.
        """
        if prt is None:
            prt = PortReservationTable()
        origin = coflow.arrival_time if start_time is None else start_time
        return self.schedule_demand(
            prt,
            coflow.coflow_id,
            coflow.processing_times(bandwidth_bps),
            start_time=origin,
        )

    # ------------------------------------------------------------------
    # Inter-Coflow scheduling (Algorithm 1, InterCoflow)
    # ------------------------------------------------------------------
    def schedule_many(
        self,
        demands: Sequence[Tuple[int, Mapping[Tuple[int, int], float]]],
        start_time: float = 0.0,
        prt: Optional[PortReservationTable] = None,
        established: Optional[Mapping[int, "EstablishedCircuits"]] = None,
    ) -> Tuple[PortReservationTable, Dict[int, CoflowSchedule]]:
        """Schedule several Coflows, highest priority first, on one PRT.

        Args:
            demands: ``(coflow_id, demand_times)`` pairs in priority order.
            start_time: common scheduling origin.
            prt: table to fill (fresh one by default).
            established: per-Coflow pre-configured circuits (see
                :meth:`schedule_demand`).

        Returns:
            The filled PRT and a per-Coflow schedule map.
        """
        if prt is None:
            prt = PortReservationTable()
        if established is None:
            established = {}
        schedules: Dict[int, CoflowSchedule] = {}
        for coflow_id, demand_times in demands:
            schedules[coflow_id] = self.schedule_demand(
                prt,
                coflow_id,
                demand_times,
                start_time=start_time,
                established=established.get(coflow_id, frozenset()),
            )
        return prt, schedules

    def schedule_coflows(
        self,
        coflows: Iterable[Coflow],
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        start_time: float = 0.0,
    ) -> Tuple[PortReservationTable, Dict[int, CoflowSchedule]]:
        """Schedule whole Coflows (already in priority order) from scratch."""
        demands = [
            (c.coflow_id, c.processing_times(bandwidth_bps)) for c in coflows
        ]
        return self.schedule_many(demands, start_time=start_time)

    # ------------------------------------------------------------------
    # Reference implementation (literal Algorithm 1; used by tests)
    # ------------------------------------------------------------------
    def schedule_demand_reference(
        self,
        prt: PortReservationTable,
        coflow_id: int,
        demand_times: Mapping[Tuple[int, int], float],
        start_time: float = 0.0,
        established: "EstablishedCircuits" = frozenset(),
    ) -> CoflowSchedule:
        """Literal transcription of Algorithm 1 (quadratic rescan loop).

        Produces the same reservations as :meth:`schedule_demand`; kept for
        validation and as executable documentation of the pseudocode.
        """
        established = _normalize_established(established)
        entries = self._make_entries(demand_times)
        schedule = CoflowSchedule(coflow_id=coflow_id, start_time=start_time)
        t = start_time
        while entries:
            for entry in entries:
                entry.remaining = self._make_reservation(
                    prt, schedule, entry, t, start_time, established
                )
            entries = [e for e in entries if e.remaining > TIME_EPS]
            if not entries:
                break
            next_t = prt.next_release_after(t)
            if next_t is None:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t = next_t
        return schedule

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _quantize(self, seconds: float) -> float:
        """Round a processing time up to the §6 approximation grid."""
        if self.quantum is None:
            return seconds
        return math.ceil(seconds / self.quantum - TIME_EPS) * self.quantum

    def _make_entries(
        self, demand_times: Mapping[Tuple[int, int], float]
    ) -> List[_Entry]:
        return make_entries(
            demand_times,
            self.order,
            self._rng,
            quantize=None if self.quantum is None else self._quantize,
        )

    def _make_reservation(
        self,
        prt: PortReservationTable,
        schedule: CoflowSchedule,
        entry: _Entry,
        t: float,
        start_time: float,
        established: Mapping[Tuple[int, int], Tuple[float, Optional[float]]],
    ) -> float:
        """Algorithm 1, MakeReservation: try to reserve for one entry at ``t``.

        Returns the remaining processing time after the reservation (the
        unchanged remaining time if no reservation could be made).
        """
        # Scalar covering probes: one bisect over raw boundary doubles, no
        # Reservation materialized.  A covered port stays covered until the
        # blocking reservation ends; any attempt strictly before that is
        # guaranteed to land here again, so the entry waits out that port.
        if prt.input_covering_end(entry.src, t) is not None:
            entry.blocked_key = entry.src * 2
            return entry.remaining
        if prt.output_covering_end(entry.dst, t) is not None:
            entry.blocked_key = entry.dst * 2 + 1
            return entry.remaining

        # A circuit already configured (or mid-setup) for this flow at the
        # schedule origin only pays its remaining setup if we keep using it
        # from that same instant.
        anchor: Optional[float] = None
        reuse = (
            abs(t - start_time) <= TIME_EPS
            and (entry.src, entry.dst) in established
        )
        if reuse:
            setup_left, anchor = established[(entry.src, entry.dst)]
            setup = min(self.delta, setup_left)
        else:
            setup = self.delta

        t_next = prt.next_reserved_time(entry.src, entry.dst, t)
        max_length = t_next - t
        desired_length = setup + entry.remaining
        if max_length <= setup + TIME_EPS:
            # The gap cannot fit even the reconfiguration: reserving would
            # transmit nothing, so skip (Algorithm 1 line 19, lm < δ).
            # The gap only shrinks as t advances toward ``t_next``, and the
            # blocking reservation then covers the port until it ends — so
            # no attempt before that end can succeed either.
            _, on_input = prt.release_of_block(entry.src, entry.dst, t, t_next)
            entry.blocked_key = entry.src * 2 if on_input else entry.dst * 2 + 1
            return entry.remaining
        if desired_length < max_length:
            length = desired_length
            end = t + length
            if anchor is not None and abs(end - anchor) <= TIME_EPS:
                # An uninterrupted continuation of an already-planned
                # circuit: land on the previously planned end exactly, so
                # replanning the same state reproduces the same
                # reservation bit-for-bit instead of drifting by float
                # re-association.
                end = anchor
        else:
            # Truncated (or exactly fitting) reservation: land exactly on
            # the blocking reservation's start — ``t + (t_next - t)`` can
            # drift from ``t_next`` by an ulp, and downstream plans key on
            # these endpoints bitwise.
            length = max_length
            end = t_next
        reservation = prt.reserve(
            entry.src,
            entry.dst,
            start=t,
            end=end,
            coflow_id=schedule.coflow_id,
            setup=setup,
        )
        schedule.reservations.append(reservation)
        return desired_length - length
