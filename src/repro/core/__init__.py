"""Core Sunflow contribution: traffic model, PRT, Algorithm 1, bounds, policies."""

from repro.core.bounds import (
    alpha,
    circuit_lower_bound,
    flow_circuit_time,
    packet_lower_bound,
    port_loads,
    sunflow_circuit_bound,
    sunflow_packet_bound,
)
from repro.core.coflow import Coflow, CoflowCategory, CoflowTrace, Flow
from repro.core.multiswitch import (
    MultiSwitchSchedule,
    MultiSwitchSunflow,
    PlanedReservation,
)
from repro.core.policies import (
    POLICIES,
    ClassThen,
    EarliestDeadlineFirst,
    CoflowView,
    Fifo,
    NarrowestFirst,
    Policy,
    ShortestFirst,
    SmallestTotalFirst,
    views_from_coflows,
)
from repro.core.prt import (
    PortConflictError,
    PortReservationTable,
    Reservation,
    TIME_EPS,
)
from repro.core.starvation import (
    GUARD_COFLOW_ID,
    GuardWindow,
    StarvationGuard,
    round_robin_assignments,
)
from repro.core.sunflow import CoflowSchedule, ReservationOrder, SunflowScheduler
from repro.core.validate import (
    ScheduleValidationError,
    check_coverage,
    check_lemma_one,
    check_non_preemption,
    check_port_constraint,
    validate_schedule,
)

__all__ = [
    "alpha",
    "circuit_lower_bound",
    "flow_circuit_time",
    "packet_lower_bound",
    "port_loads",
    "sunflow_circuit_bound",
    "sunflow_packet_bound",
    "Coflow",
    "CoflowCategory",
    "CoflowTrace",
    "Flow",
    "MultiSwitchSchedule",
    "MultiSwitchSunflow",
    "PlanedReservation",
    "POLICIES",
    "ClassThen",
    "EarliestDeadlineFirst",
    "CoflowView",
    "Fifo",
    "NarrowestFirst",
    "Policy",
    "ShortestFirst",
    "SmallestTotalFirst",
    "views_from_coflows",
    "PortConflictError",
    "PortReservationTable",
    "Reservation",
    "TIME_EPS",
    "GUARD_COFLOW_ID",
    "GuardWindow",
    "StarvationGuard",
    "round_robin_assignments",
    "CoflowSchedule",
    "ReservationOrder",
    "SunflowScheduler",
    "ScheduleValidationError",
    "check_coverage",
    "check_lemma_one",
    "check_non_preemption",
    "check_port_constraint",
    "validate_schedule",
]
