"""Gap-signature cache of intra-Coflow plans (the second planner layer).

Algorithm 1 is a *deterministic* function of surprisingly few inputs: the
Coflow's remaining demand entries (in consideration order), its
established-circuit state, the schedule origin, the scheduler's
``(delta, order, quantum)`` configuration — and the occupancy, from the
origin onward, of exactly the ports the demand touches.  Releases or
reservations anywhere else cannot reach any query the planner makes.

Only plans *without* established circuits are cached.  A Coflow holding
circuits is mid-service: its remaining demand mutates at every event, so
its key could never recur, and its continuations are already carried
forward bit-for-bit by the incremental replanner's transform-keep path
(:meth:`~repro.sim.circuit_sim.InterCoflowSimulator._transform_continuation`).
Exempting it keeps signature capture off the per-event service path.

The cache exploits this: every computed plan is stored under a key built
from those inputs, with the port occupancy captured as *gap-signature
profiles* (:meth:`PortReservationTable.input_profile`) — the per-port
boundary suffix at/after the origin plus a covered-at-origin parity bit.
On a later ``schedule_demand`` call with the same key, the cached
reservations are replayed into the PRT verbatim instead of re-running
Algorithm 1.  Replay still performs full overlap checks, so a stale entry
that no longer fits raises and is invalidated (defense in depth; a
matching signature proves it fits).

Two kinds of hit:

* **Exact** — same origin, bitwise-equal profiles.  These occur when the
  same planning problem recurs at one instant, e.g. the starvation
  guard's grow-horizon retry loop re-planning Coflows whose ports the
  extended guard windows did not touch.

* **Shifted** — the stored plan was computed at an *earlier* origin
  ``s0 <= now``, placed nothing before ``now``, and its profiles
  re-truncated at ``now`` equal the current ones.  Then a fresh run at
  ``now`` provably reproduces it bit-for-bit:
  with every touched port's occupancy identical, a blocked entry's
  wait-release-reattempt chain from ``now`` converges to the same first
  feasible instant the old chain found (there is provably no earlier
  moment with both ports free, else the old run would have reserved
  there), and placements at/after ``now`` then cascade identically in
  consideration order.  (Established circuits would break this: their
  setup discount applies only at examinations within ``TIME_EPS`` of the
  origin — the one query whose outcome depends on the origin itself —
  which is one more reason they are exempt from caching.)
  This is the common case in trace replay: a priority reshuffle forces
  the incremental replanner to rebuild its layer stack, but the queued
  (never-served) Coflows deep in the order see the same port occupancy
  they saw last event, just later.

``ReservationOrder.RANDOM`` must bypass the cache entirely: a hit would
skip the ``rng.shuffle`` and desynchronize the stream for every later
plan.  (``SORTED_DEMAND`` and quantization are pure functions of the
demand already in the key, so they cache fine.)

Counters (``plan_cache_hits``, ``plan_cache_shifted_hits``,
``plan_cache_misses``, ``plan_cache_skips``,
``plan_cache_invalidations``, ``plan_cache_evictions``,
``plan_cache_bypasses``) are kept on the cache and folded into the
simulator's :class:`~repro.perf.PerfCounters` after a run.  A *skip* is
a lookup whose key pre-check proved the key was never stored — a
first-sight planning problem that cannot hit and is therefore excluded
from the hit/miss rate.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.prt import (
    PortConflictError,
    PortReservationTable,
    Reservation,
    TIME_EPS,
)

Circuit = Tuple[int, int]

#: Per-port gap signature: ``(parity, *boundary suffix)``.
Profile = Tuple[float, ...]


def _advance_profile(profile: Profile, t: float) -> Profile:
    """Re-truncate a stored profile at a later instant ``t``.

    Equivalent to recomputing :meth:`PortReservationTable._profile` at
    ``t`` against the boundary array the profile was cut from — dropped
    boundaries flip the parity bit per pair consumed.
    """
    i = bisect_right(profile, t + TIME_EPS, 1)
    if i == 1:
        return profile
    if i == len(profile):
        return (0,)
    return (int(profile[0]) ^ ((i - 1) & 1), *profile[i:])


class _CacheEntry:
    """One cached plan: its origin, context signature, and reservations."""

    __slots__ = ("start", "first_start", "in_profiles", "out_profiles", "reservations")

    def __init__(
        self,
        start: float,
        first_start: float,
        in_profiles: Tuple[Profile, ...],
        out_profiles: Tuple[Profile, ...],
        reservations: Tuple[Reservation, ...],
    ) -> None:
        self.start = start
        self.first_start = first_start
        self.in_profiles = in_profiles
        self.out_profiles = out_profiles
        self.reservations = reservations


class PlanProbe:
    """Lookup context handed back by :meth:`PlanCache.fetch` on a miss.

    Holds the key and the (already computed) current profiles so the
    subsequent :meth:`PlanCache.store` does not recompute them.
    """

    __slots__ = ("key", "start", "in_profiles", "out_profiles")

    def __init__(
        self,
        key: Tuple,
        start: float,
        in_profiles: Tuple[Profile, ...],
        out_profiles: Tuple[Profile, ...],
    ) -> None:
        self.key = key
        self.start = start
        self.in_profiles = in_profiles
        self.out_profiles = out_profiles


class PlanCache:
    """LRU cache of intra-Coflow plans keyed by gap signatures.

    Args:
        maxsize: number of distinct ``(config, coflow, demand,
            established)`` keys retained (LRU eviction beyond it).
        bucket_size: cached contexts kept per key — the same Coflow's
            plan recurs at a handful of recent origins at most.
    """

    def __init__(self, maxsize: int = 2048, bucket_size: int = 2) -> None:
        self.maxsize = maxsize
        self.bucket_size = bucket_size
        self._entries: "OrderedDict[Tuple, List[_CacheEntry]]" = OrderedDict()
        self.counters: Dict[str, int] = {
            "plan_cache_hits": 0,
            "plan_cache_shifted_hits": 0,
            "plan_cache_misses": 0,
            "plan_cache_skips": 0,
            "plan_cache_invalidations": 0,
            "plan_cache_evictions": 0,
            "plan_cache_bypasses": 0,
        }

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    def note_bypass(self) -> None:
        """Record a call that must not use the cache (RANDOM order)."""
        self.counters["plan_cache_bypasses"] += 1

    @property
    def hit_rate(self) -> Optional[float]:
        """Hits over lookups so far (None before the first lookup).

        Skipped lookups (``plan_cache_skips`` — the key pre-check proved
        the key has never been stored) are *not* lookups: they are
        first-sight plans that could not possibly hit, and counting them
        as misses would deflate the rate the cache is actually achieving
        on recurring problems.
        """
        c = self.counters
        lookups = c["plan_cache_hits"] + c["plan_cache_misses"]
        if lookups == 0:
            return None
        return c["plan_cache_hits"] / lookups

    # ------------------------------------------------------------------
    def fetch(
        self,
        prt: PortReservationTable,
        config_key: Tuple,
        coflow_id: int,
        demand_times: Mapping[Circuit, float],
        start_time: float,
    ) -> Tuple[Optional[List[Reservation]], Optional[PlanProbe]]:
        """Look up a cached plan for this exact planning problem.

        Only demands with *no established circuits* reach the cache (see
        the module docstring), so the key is ``(config, coflow, demand)``
        and every candidate either matches at the same origin or is
        checked for a shifted hit.  On a hit the cached reservations are
        replayed into ``prt`` and returned as a fresh list (the caller
        wraps them in its own schedule object).  On a miss, returns a
        :class:`PlanProbe` to pass to :meth:`store` once the plan has
        been computed.  Returns ``(None, None)`` for empty demands
        (nothing worth caching).

        ``demand_times`` is keyed by its *iteration order*, not sorted:
        callers hold per-Coflow demand dicts whose key order is fixed for
        the Coflow's lifetime, and the planner sorts entries itself, so
        insertion order never changes the plan — at worst a reordered
        dict misses a hit it could have had.
        """
        if not demand_times:
            return None, None
        demand_key = tuple(demand_times.items())
        key = (config_key, coflow_id, demand_key)

        counters = self.counters
        bucket = self._entries.get(key)
        if bucket is None:
            # Key pre-check: nothing was ever stored under this planning
            # problem, so the signature scan cannot hit.  Count it as a
            # skip (not a miss) and hand back a probe so the computed
            # plan still seeds the cache.
            counters["plan_cache_skips"] += 1
            return None, self._probe(prt, key, demand_times, start_time)

        in_ports = {src for src, _ in demand_times}
        out_ports = {dst for _, dst in demand_times}
        in_profiles = tuple(
            prt.input_profile(p, start_time) for p in sorted(in_ports)
        )
        out_profiles = tuple(
            prt.output_profile(p, start_time) for p in sorted(out_ports)
        )

        for entry in bucket:
            if entry.start == start_time:
                matched = (
                    entry.in_profiles == in_profiles
                    and entry.out_profiles == out_profiles
                )
            elif (
                entry.start < start_time
                and entry.first_start >= start_time - TIME_EPS
            ):
                matched = all(
                    _advance_profile(stored, start_time) == current
                    for stored, current in zip(entry.in_profiles, in_profiles)
                ) and all(
                    _advance_profile(stored, start_time) == current
                    for stored, current in zip(entry.out_profiles, out_profiles)
                )
            else:
                matched = False
            if not matched:
                continue
            try:
                prt.replay(entry.reservations)
            except PortConflictError:
                # A matching signature proves the plan fits; this is
                # pure defense against future query/profile drift.
                bucket.remove(entry)
                if not bucket:
                    del self._entries[key]
                counters["plan_cache_invalidations"] += 1
                break
            counters["plan_cache_hits"] += 1
            if entry.start != start_time:
                counters["plan_cache_shifted_hits"] += 1
            self._entries.move_to_end(key)
            return list(entry.reservations), None

        counters["plan_cache_misses"] += 1
        return None, PlanProbe(key, start_time, in_profiles, out_profiles)

    def probe_only(
        self,
        prt: PortReservationTable,
        config_key: Tuple,
        coflow_id: int,
        demand_times: Mapping[Circuit, float],
        start_time: float,
    ) -> Optional[PlanProbe]:
        """Build a store-probe without performing (or counting) a lookup.

        Used by replanner paths that already hold a plan proven correct by
        other means (verbatim replay, continuation transform) and only
        want to *populate* the cache so later recurrences hit.
        """
        if not demand_times:
            return None
        key = (config_key, coflow_id, tuple(demand_times.items()))
        return self._probe(prt, key, demand_times, start_time)

    def _probe(
        self,
        prt: PortReservationTable,
        key: Tuple,
        demand_times: Mapping[Circuit, float],
        start_time: float,
    ) -> PlanProbe:
        in_ports = {src for src, _ in demand_times}
        out_ports = {dst for _, dst in demand_times}
        return PlanProbe(
            key,
            start_time,
            tuple(prt.input_profile(p, start_time) for p in sorted(in_ports)),
            tuple(prt.output_profile(p, start_time) for p in sorted(out_ports)),
        )

    def store(
        self,
        probe: PlanProbe,
        reservations: Sequence[Reservation],
        first_start: float,
    ) -> None:
        """Cache a freshly computed plan under the probe's signature."""
        entry = _CacheEntry(
            start=probe.start,
            first_start=first_start,
            in_profiles=probe.in_profiles,
            out_profiles=probe.out_profiles,
            reservations=tuple(reservations),
        )
        entries = self._entries
        bucket = entries.get(key := probe.key)
        if bucket is None:
            entries[key] = [entry]
        else:
            bucket.insert(0, entry)
            del bucket[self.bucket_size :]
        entries.move_to_end(key)
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.counters["plan_cache_evictions"] += 1
