"""K-core optical circuit switching: fabric model and multi-core Sunflow.

The Sunflow paper (§6) defers "controlling a network of circuit switches"
to future work.  The two K-core OCS papers in PAPERS.md supply the model
this module implements: every port pair is connected through ``K``
parallel switch *cores* (each rack owns one transceiver per core), each
core enforcing its own port constraint with its own reconfiguration delay
``δ_k`` and line rate ``B_k``.  A schedule places reservations on the
per-core :class:`~repro.core.prt.PortReservationTable` group
(:class:`~repro.core.prt.CoreReservationTables`).

Three coflow-to-core placement policies are provided, registered in
:data:`MULTICORE_POLICIES`:

* ``"ok-approx"`` — the *O(K)-approximation* discipline: whole Coflows
  (no splitting) are assigned, in priority order, to the core that
  minimizes the resulting bottleneck-port completion estimate
  (least-loaded-core assignment, :class:`CoreLoadTracker`), and each
  core's Coflows are then scheduled by single-core Sunflow against that
  core's table.  Per core, Lemma 1's ``2 × T^c_L`` holds; the per-core
  bound relates to the K-core lower bound
  (:func:`~repro.core.bounds.multicore_circuit_lower_bound`) by at most a
  factor of ``K``, giving the O(K) guarantee of the first K-core paper.
* ``"balanced-split"`` — the *performance-guarantee* discipline of the
  multi-core OCS paper: every Coflow's demand is split across all cores
  proportionally to core bandwidth, so each core sees an identically
  shaped ``1/K`` workload and single-core Sunflow's 2× guarantee carries
  over against the K-core bound directly.
* ``"first-fit"`` — flow-level spreading (the repository's historical
  ``MultiSwitchSunflow`` demo, promoted): Algorithm 1 generalized so
  MakeReservation tries each core in index order and reserves on the
  first whose ports are free and whose gap fits.  Greedy and intra-only;
  kept as the legacy-compatible baseline.

Every policy degenerates *exactly* to single-switch Sunflow at ``K = 1``
— the differential suites pin that bitwise, through the planner here and
through the public API.
"""

from __future__ import annotations

import heapq
import itertools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.core.coflow import Coflow
from repro.core.plan_cache import PlanCache
from repro.core.prt import (
    CoreReservationTables,
    PortReservationTable,
    Reservation,
    TIME_EPS,
)
from repro.core.sunflow import (
    CoflowSchedule,
    ReservationOrder,
    SunflowScheduler,
    _Entry,
    make_entries,
)
from repro.units import (
    BITS_PER_BYTE,
    DEFAULT_BANDWIDTH,
    DEFAULT_DELTA,
    processing_time,
    size_from_processing_time,
)

Circuit = Tuple[int, int]


# ----------------------------------------------------------------------
# Fabric model
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SwitchCore:
    """One switch core of a K-core OCS fabric.

    Attributes:
        index: core number in ``[0, K)``; also the tie-break order every
            placement rule uses, so schedules are deterministic.
        bandwidth_bps: the core's per-port line rate in bits per second.
        delta: the core's circuit reconfiguration delay in seconds.
    """

    index: int
    bandwidth_bps: float = DEFAULT_BANDWIDTH
    delta: float = DEFAULT_DELTA

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"core index must be non-negative, got {self.index!r}")
        if self.bandwidth_bps <= 0:
            raise ValueError(
                f"core bandwidth must be positive, got {self.bandwidth_bps!r}"
            )
        if self.delta < 0:
            raise ValueError(f"core delta must be non-negative, got {self.delta!r}")

    @property
    def rate_bytes(self) -> float:
        """Line rate in bytes per second."""
        return self.bandwidth_bps / BITS_PER_BYTE


def uniform_cores(
    num_cores: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
) -> Tuple[SwitchCore, ...]:
    """``K`` identical cores (the common homogeneous-fabric case)."""
    if num_cores <= 0:
        raise ValueError(f"core count must be positive, got {num_cores!r}")
    return tuple(
        SwitchCore(index=k, bandwidth_bps=bandwidth_bps, delta=delta)
        for k in range(num_cores)
    )


def build_cores(
    num_cores: int,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    core_bandwidths: Optional[Sequence[float]] = None,
    core_deltas: Optional[Sequence[float]] = None,
) -> Tuple[SwitchCore, ...]:
    """Cores from base values plus optional per-core overrides."""
    if num_cores <= 0:
        raise ValueError(f"core count must be positive, got {num_cores!r}")
    for label, values in (("bandwidths", core_bandwidths), ("deltas", core_deltas)):
        if values is not None and len(values) != num_cores:
            raise ValueError(
                f"core_{label} has {len(values)} entries for {num_cores} cores"
            )
    return tuple(
        SwitchCore(
            index=k,
            bandwidth_bps=(
                core_bandwidths[k] if core_bandwidths is not None else bandwidth_bps
            ),
            delta=core_deltas[k] if core_deltas is not None else delta,
        )
        for k in range(num_cores)
    )


# ----------------------------------------------------------------------
# Policy registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MulticorePolicy:
    """Declarative description of one coflow-to-core placement policy."""

    name: str
    supports_intra: bool
    supports_inter: bool
    description: str


MULTICORE_POLICIES: Dict[str, MulticorePolicy] = {
    policy.name: policy
    for policy in (
        MulticorePolicy(
            name="ok-approx",
            supports_intra=True,
            supports_inter=True,
            description=(
                "O(K)-approximation: whole Coflows to the least-loaded "
                "core, single-core Sunflow per core"
            ),
        ),
        MulticorePolicy(
            name="balanced-split",
            supports_intra=True,
            supports_inter=True,
            description=(
                "performance-guarantee: bandwidth-proportional demand "
                "split across all cores"
            ),
        ),
        MulticorePolicy(
            name="first-fit",
            supports_intra=True,
            supports_inter=False,
            description=(
                "flow-level spreading: reserve on the first core whose "
                "ports are free and whose gap fits (legacy multiswitch)"
            ),
        ),
    )
}

#: Placement used when a spec asks for cores without naming a policy.
DEFAULT_INTER_POLICY = "ok-approx"
DEFAULT_INTRA_POLICY = "first-fit"


def resolve_multicore_policy(name: Optional[str], mode: str) -> MulticorePolicy:
    """Validate a policy name against the registry and the mode."""
    if name is None:
        name = DEFAULT_INTRA_POLICY if mode == "intra" else DEFAULT_INTER_POLICY
    try:
        policy = MULTICORE_POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown multicore policy {name!r}; expected one of "
            f"{sorted(MULTICORE_POLICIES)}"
        ) from None
    supported = policy.supports_intra if mode == "intra" else policy.supports_inter
    if not supported:
        raise ValueError(
            f"multicore policy {policy.name!r} does not support mode {mode!r}"
        )
    return policy


# ----------------------------------------------------------------------
# Demand placement helpers
# ----------------------------------------------------------------------
def split_demand(
    demand_bytes: Mapping[Circuit, float], cores: Sequence[SwitchCore]
) -> List[Dict[Circuit, float]]:
    """Bandwidth-proportional byte shares, one mapping per core.

    With one core the share factor is exactly ``1.0``, so the split is
    the identity bitwise — the K=1 degeneracy the equivalence tests pin.
    """
    total = sum(core.bandwidth_bps for core in cores)
    fractions = [core.bandwidth_bps / total for core in cores]
    return [
        {circuit: size * fraction for circuit, size in demand_bytes.items()}
        for fraction in fractions
    ]


class CoreLoadTracker:
    """Per-core unfinished port load in bytes, for least-loaded assignment.

    The O(K)-approximation discipline assigns each Coflow, on arrival /
    in priority order, to the core minimizing the projected bottleneck:
    the busiest port's accumulated bytes (existing unfinished load plus
    the candidate Coflow's own) at the core's line rate, plus one
    reconfiguration delay.  Loads are maintained coarsely — added on
    assignment, removed on completion — which mirrors the papers'
    arrival-time estimates rather than instantaneous residuals.
    """

    def __init__(self, cores: Sequence[SwitchCore]) -> None:
        self.cores = tuple(cores)
        self._in_load: List[Dict[int, float]] = [{} for _ in cores]
        self._out_load: List[Dict[int, float]] = [{} for _ in cores]

    # ------------------------------------------------------------------
    @staticmethod
    def _port_bytes(
        demand_bytes: Mapping[Circuit, float]
    ) -> Tuple[Dict[int, float], Dict[int, float]]:
        in_add: Dict[int, float] = {}
        out_add: Dict[int, float] = {}
        for (src, dst), size in demand_bytes.items():
            in_add[src] = in_add.get(src, 0.0) + size
            out_add[dst] = out_add.get(dst, 0.0) + size
        return in_add, out_add

    def score(self, core: int, demand_bytes: Mapping[Circuit, float]) -> float:
        """Projected bottleneck completion (seconds) if placed on ``core``."""
        in_add, out_add = self._port_bytes(demand_bytes)
        rate = self.cores[core].rate_bytes
        worst = 0.0
        for loads, adds in (
            (self._in_load[core], in_add),
            (self._out_load[core], out_add),
        ):
            for port, add in adds.items():
                load = (loads.get(port, 0.0) + add) / rate
                if load > worst:
                    worst = load
        return worst + self.cores[core].delta

    def assign(self, demand_bytes: Mapping[Circuit, float]) -> int:
        """Least-loaded core for this demand (ties to the lowest index)."""
        best = 0
        best_score = self.score(0, demand_bytes)
        for core in range(1, len(self.cores)):
            score = self.score(core, demand_bytes)
            if score < best_score - TIME_EPS:
                best = core
                best_score = score
        return best

    def add(self, core: int, demand_bytes: Mapping[Circuit, float]) -> None:
        in_add, out_add = self._port_bytes(demand_bytes)
        for loads, adds in (
            (self._in_load[core], in_add),
            (self._out_load[core], out_add),
        ):
            for port, add in adds.items():
                loads[port] = loads.get(port, 0.0) + add

    def remove(self, core: int, demand_bytes: Mapping[Circuit, float]) -> None:
        in_add, out_add = self._port_bytes(demand_bytes)
        for loads, adds in (
            (self._in_load[core], in_add),
            (self._out_load[core], out_add),
        ):
            for port, add in adds.items():
                left = loads.get(port, 0.0) - add
                if left <= TIME_EPS:
                    loads.pop(port, None)
                else:
                    loads[port] = left


# ----------------------------------------------------------------------
# Multi-core schedules
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CoreReservation:
    """A reservation bound to one switch core."""

    core: int
    reservation: Reservation

    @property
    def plane(self) -> int:
        """Historical name from the multiswitch demo (plane == core)."""
        return self.core


@dataclass
class MultiCoreSchedule:
    """The planned per-core reservations for one Coflow."""

    coflow_id: int
    start_time: float
    reservations: List[CoreReservation] = field(default_factory=list)

    @property
    def completion_time(self) -> float:
        if not self.reservations:
            return self.start_time
        return max(item.reservation.end for item in self.reservations)

    @property
    def makespan(self) -> float:
        return self.completion_time - self.start_time

    @property
    def num_setups(self) -> int:
        return sum(1 for item in self.reservations if item.reservation.setup > 0)

    def per_core_counts(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for item in self.reservations:
            counts[item.core] = counts.get(item.core, 0) + 1
        return counts

    # Historical spelling from the multiswitch demo.
    per_plane_counts = per_core_counts


# ----------------------------------------------------------------------
# The multi-core scheduler
# ----------------------------------------------------------------------
class MultiCoreSunflowScheduler:
    """Sunflow planning over a K-core OCS fabric.

    Owns one single-core :class:`~repro.core.sunflow.SunflowScheduler`
    per core (each with the core's ``δ``), all sharing one gap-signature
    :class:`~repro.core.plan_cache.PlanCache` namespaced by core index
    (``cache_scope``), plus the joint first-fit planner that spreads one
    Coflow's flows across the cores.

    Demand is carried in **bytes** at this layer — per-core processing
    times differ when core bandwidths do, so seconds are only derived at
    the moment a core is chosen.

    Args:
        cores: the fabric, ordered by :attr:`SwitchCore.index`.
        order: intra-Coflow demand consideration order.
        rng: random source shared by every per-core scheduler
            (``ReservationOrder.RANDOM`` only).
        plan_cache: shared plan cache; a fresh one is created by default.
        cache_plans: disable caching entirely when False.
    """

    def __init__(
        self,
        cores: Sequence[SwitchCore],
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        rng: Optional[random.Random] = None,
        plan_cache: Optional[PlanCache] = None,
        cache_plans: bool = True,
    ) -> None:
        if not cores:
            raise ValueError("at least one switch core is required")
        for position, core in enumerate(cores):
            if core.index != position:
                raise ValueError(
                    f"core at position {position} has index {core.index}; "
                    "cores must be ordered by index"
                )
        self.cores = tuple(cores)
        self.order = order
        self._rng = rng if rng is not None else random.Random(0)
        if plan_cache is None and cache_plans:
            plan_cache = PlanCache()
        self.plan_cache = plan_cache if cache_plans else None
        self.schedulers = tuple(
            SunflowScheduler(
                delta=core.delta,
                order=order,
                rng=self._rng,
                plan_cache=self.plan_cache,
                cache_plans=cache_plans,
                cache_scope=core.index,
            )
            for core in self.cores
        )
        #: Entries count as drained when their remaining bytes would
        #: transmit within ``TIME_EPS`` on the fastest core — the byte
        #: mirror of the planners' seconds-epsilon.
        self._byte_eps = TIME_EPS * max(core.rate_bytes for core in self.cores)

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    def new_tables(self) -> CoreReservationTables:
        return CoreReservationTables.fresh(self.num_cores)

    # ------------------------------------------------------------------
    # Whole-coflow / split placement (ok-approx and balanced-split)
    # ------------------------------------------------------------------
    def schedule_on_core(
        self,
        core: int,
        tables: CoreReservationTables,
        coflow_id: int,
        demand_bytes: Mapping[Circuit, float],
        start_time: float = 0.0,
    ) -> List[CoreReservation]:
        """Schedule one demand share entirely on ``core`` via single-core
        Sunflow (the per-core leg of ok-approx and balanced-split)."""
        bandwidth = self.cores[core].bandwidth_bps
        seconds = {
            circuit: processing_time(size, bandwidth)
            for circuit, size in demand_bytes.items()
            if size > 0
        }
        plan = self.schedulers[core].schedule_demand(
            tables[core], coflow_id, seconds, start_time=start_time
        )
        return [CoreReservation(core, r) for r in plan.reservations]

    def schedule_coflow(
        self,
        coflow: Coflow,
        policy: str = DEFAULT_INTRA_POLICY,
        tables: Optional[CoreReservationTables] = None,
        start_time: float = 0.0,
        loads: Optional[CoreLoadTracker] = None,
    ) -> MultiCoreSchedule:
        """Place one whole Coflow per ``policy`` (fresh tables by default)."""
        if tables is None:
            tables = self.new_tables()
        demand = coflow.demand()
        schedule = MultiCoreSchedule(
            coflow_id=coflow.coflow_id, start_time=start_time
        )
        if policy == "first-fit":
            return self.schedule_demand(
                tables, coflow.coflow_id, demand, start_time=start_time
            )
        if policy == "ok-approx":
            tracker = loads if loads is not None else CoreLoadTracker(self.cores)
            core = tracker.assign(demand)
            tracker.add(core, demand)
            schedule.reservations.extend(
                self.schedule_on_core(
                    core, tables, coflow.coflow_id, demand, start_time
                )
            )
            return schedule
        if policy == "balanced-split":
            for core, share in enumerate(split_demand(demand, self.cores)):
                schedule.reservations.extend(
                    self.schedule_on_core(
                        core, tables, coflow.coflow_id, share, start_time
                    )
                )
            return schedule
        raise ValueError(
            f"unknown multicore policy {policy!r}; expected one of "
            f"{sorted(MULTICORE_POLICIES)}"
        )

    def schedule_coflows(
        self,
        coflows: Sequence[Coflow],
        policy: str = DEFAULT_INTRA_POLICY,
        start_time: float = 0.0,
    ) -> Tuple[CoreReservationTables, Dict[int, MultiCoreSchedule]]:
        """Priority-ordered inter-Coflow scheduling on one table group."""
        tables = self.new_tables()
        loads = CoreLoadTracker(self.cores)
        schedules: Dict[int, MultiCoreSchedule] = {}
        for coflow in coflows:
            schedules[coflow.coflow_id] = self.schedule_coflow(
                coflow,
                policy=policy,
                tables=tables,
                start_time=start_time,
                loads=loads,
            )
        return tables, schedules

    # ------------------------------------------------------------------
    # First-fit joint planner (Algorithm 1 generalized across cores)
    # ------------------------------------------------------------------
    def schedule_demand(
        self,
        tables: CoreReservationTables,
        coflow_id: int,
        demand_bytes: Mapping[Circuit, float],
        start_time: float = 0.0,
    ) -> MultiCoreSchedule:
        """Reserve circuits for one Coflow, spreading flows across cores.

        MakeReservation's generalization: at each attempt instant, try the
        cores in index order and reserve on the first whose two ports are
        free and whose gap exceeds that core's ``δ_k``.  Everything else —
        non-preemption, the global consideration order, the event-driven
        release scan — carries over from Algorithm 1 unchanged.

        At ``K = 1`` the call *delegates* to the single-core scheduler, so
        one-core fabrics produce bit-identical plans to plain Sunflow
        (shared hot path, shared plan cache, same float expressions).
        """
        if len(tables) != self.num_cores:
            raise ValueError(
                f"expected {self.num_cores} tables, got {len(tables)}"
            )
        if self.num_cores == 1:
            schedule = MultiCoreSchedule(
                coflow_id=coflow_id, start_time=start_time
            )
            schedule.reservations.extend(
                self.schedule_on_core(
                    0, tables, coflow_id, demand_bytes, start_time
                )
            )
            return schedule

        entries = self._make_entries(demand_bytes)
        schedule = MultiCoreSchedule(coflow_id=coflow_id, start_time=start_time)
        if not entries:
            return schedule

        num_cores = self.num_cores
        byte_eps = self._byte_eps
        pending_by_port: Dict[Tuple[int, int, int], Set[_Entry]] = {}
        for entry in entries:
            for core in range(num_cores):
                pending_by_port.setdefault((core, 0, entry.src), set()).add(entry)
                pending_by_port.setdefault((core, 1, entry.dst), set()).add(entry)
        outstanding = len(entries)

        counter = itertools.count()
        events: List[Tuple[float, int, int, int, int]] = []
        used_inputs = {entry.src for entry in entries}
        used_outputs = {entry.dst for entry in entries}
        seeded: Set[Tuple[float, int, int, int]] = set()
        for core, prt in enumerate(tables):
            for port in used_inputs:
                for end, src, dst in prt.release_events_for_input(port, start_time):
                    seeded.add((end, core, src, dst))
            for port in used_outputs:
                for end, src, dst in prt.release_events_for_output(port, start_time):
                    seeded.add((end, core, src, dst))
        for end, core, src, dst in sorted(seeded):
            heapq.heappush(events, (end, next(counter), core, src, dst))

        def attempt(batch, t: float) -> None:
            nonlocal outstanding
            for entry in sorted(batch, key=lambda e: e.order_index):
                if entry.remaining <= byte_eps:
                    continue
                placed = self._reserve_first_fit(tables, schedule, entry, t)
                if placed is not None:
                    core, reservation = placed
                    heapq.heappush(
                        events,
                        (
                            reservation.end,
                            next(counter),
                            core,
                            reservation.src,
                            reservation.dst,
                        ),
                    )
                if entry.remaining <= byte_eps:
                    for core in range(num_cores):
                        pending_by_port[(core, 0, entry.src)].discard(entry)
                        pending_by_port[(core, 1, entry.dst)].discard(entry)
                    outstanding -= 1

        attempt(entries, start_time)
        while outstanding > 0:
            if not events:
                raise RuntimeError(
                    f"coflow {coflow_id}: demand left but no future release"
                )
            t = events[0][0]
            released: Set[Tuple[int, int, int]] = set()
            while events and events[0][0] <= t + TIME_EPS:
                _, _, core, src, dst = heapq.heappop(events)
                released.add((core, 0, src))
                released.add((core, 1, dst))
            candidates: Set[_Entry] = set()
            for key in released:
                candidates.update(pending_by_port.get(key, ()))
            if candidates:
                attempt(candidates, t)
        return schedule

    # ------------------------------------------------------------------
    def _make_entries(self, demand_bytes: Mapping[Circuit, float]) -> List[_Entry]:
        """Demand entries (remaining in *bytes*) in consideration order.

        Delegates to the shared :func:`repro.core.sunflow.make_entries`
        packing helper (with this planner's byte-denominated epsilon), so
        K-core planning rides the same packed-demand and sorted-items
        fast paths as the single-switch scheduler instead of keeping its
        own copy of the ordering rules.
        """
        return make_entries(
            demand_bytes, self.order, self._rng, eps=self._byte_eps
        )

    def _reserve_first_fit(
        self,
        tables: CoreReservationTables,
        schedule: MultiCoreSchedule,
        entry: _Entry,
        t: float,
    ) -> Optional[Tuple[int, Reservation]]:
        """Try each core in index order; reserve on the first feasible one."""
        for core_index, core in enumerate(self.cores):
            prt = tables[core_index]
            if not (
                prt.input_free_at(entry.src, t) and prt.output_free_at(entry.dst, t)
            ):
                continue
            t_next = prt.next_reserved_time(entry.src, entry.dst, t)
            max_length = t_next - t
            setup = core.delta
            if max_length <= setup + TIME_EPS:
                continue
            need_seconds = processing_time(entry.remaining, core.bandwidth_bps)
            desired_length = setup + need_seconds
            if desired_length < max_length:
                length = desired_length
                end = t + length
                served = entry.remaining
            else:
                length = max_length
                end = t_next
                served = size_from_processing_time(
                    length - setup, core.bandwidth_bps
                )
            reservation = prt.reserve(
                entry.src,
                entry.dst,
                start=t,
                end=end,
                coflow_id=schedule.coflow_id,
                setup=setup,
            )
            schedule.reservations.append(CoreReservation(core_index, reservation))
            left = entry.remaining - served
            entry.remaining = left if left > 0.0 else 0.0
            return core_index, reservation
        return None


__all__ = [
    "SwitchCore",
    "uniform_cores",
    "build_cores",
    "MulticorePolicy",
    "MULTICORE_POLICIES",
    "DEFAULT_INTER_POLICY",
    "DEFAULT_INTRA_POLICY",
    "resolve_multicore_policy",
    "split_demand",
    "CoreLoadTracker",
    "CoreReservation",
    "MultiCoreSchedule",
    "MultiCoreSunflowScheduler",
]
