"""Reference Port Reservation Table (pre-array-backed implementation).

This is the list-of-``Reservation``-objects PRT that shipped before the
struct-of-arrays rewrite in :mod:`repro.core.prt`.  It is retained verbatim
(modulo imports) as the behavioural oracle for the differential fuzz tests
in ``tests/core/test_prt_equivalence.py``: random reserve / checkpoint /
rollback / replay sequences are driven through both tables and must produce
identical reservations, makespans, and conflict errors.

Not used by any production code path — import
:class:`repro.core.prt.PortReservationTable` instead.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.prt import TIME_EPS, PortConflictError, Reservation


def _start_of(reservation: "Reservation") -> float:
    return reservation.start


class ReferencePortReservationTable:
    """Reservation timelines for every input and output port.

    The table is write-once per interval: Sunflow never preempts an existing
    reservation, so reservations only accumulate.  Lookups the scheduler
    needs — "is this port free at ``t``?", "when is the next reservation on
    this port after ``t``?", "when is the next circuit release anywhere?" —
    are all O(log n) via per-port sorted lists plus a global sorted list of
    release (end) times.

    The table additionally supports *checkpoint/rollback*: reservations are
    journalled in insertion order, so any suffix of the insertion history
    can be undone in O(k log n) for k undone reservations.  The incremental
    inter-Coflow replanner uses this to keep the reservations of
    higher-priority Coflows in place while re-planning only the dirty
    suffix of the priority order.
    """

    def __init__(self) -> None:
        self._in: Dict[int, List[Reservation]] = {}
        self._out: Dict[int, List[Reservation]] = {}
        self._in_starts: Dict[int, List[float]] = {}
        self._out_starts: Dict[int, List[float]] = {}
        self._ends: List[float] = []
        self._reservations: List[Reservation] = []

    def clear(self) -> None:
        """Drop every reservation (and the journal) in place.

        The incremental replanner compacts with this when everything left
        in the table lies entirely in the past: such reservations cannot
        cover, block, or release anything from ``now`` on, so the table is
        semantically empty — clearing keeps per-port lists from growing
        with the age of the simulation.
        """
        self._in.clear()
        self._out.clear()
        self._in_starts.clear()
        self._out_starts.clear()
        self._ends.clear()
        self._reservations.clear()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._reservations)

    def __iter__(self) -> Iterator[Reservation]:
        return iter(self._reservations)

    _EMPTY: Tuple[Reservation, ...] = ()

    def reservations_for_input(self, port: int) -> Sequence[Reservation]:
        """Reservations on input ``port``, sorted by start.

        Returns a read-only view of internal state (no copy): callers must
        not mutate it, and must not hold it across a ``reserve``/``rollback``.
        """
        return self._in.get(port, self._EMPTY)

    def reservations_for_output(self, port: int) -> Sequence[Reservation]:
        """Reservations on output ``port``, sorted by start (read-only view)."""
        return self._out.get(port, self._EMPTY)

    def _releases_after(
        self, table: Dict[int, List[Reservation]], port: int, t: float
    ) -> Iterator[Reservation]:
        """Reservations on ``port`` whose end lies after ``t``, without
        scanning (or copying) the already-released prefix of the timeline.

        Per-port reservations are non-overlapping, so sorted-by-start is
        also sorted-by-end: every reservation from the first candidate on
        has ``end > t`` except possibly the candidate itself.
        """
        reservations = table.get(port)
        if not reservations:
            return
        idx = bisect.bisect_right(reservations, t + TIME_EPS, key=_start_of) - 1
        if idx < 0:
            idx = 0
        while idx < len(reservations) and reservations[idx].end <= t + TIME_EPS:
            idx += 1
        for i in range(idx, len(reservations)):
            yield reservations[i]

    def input_releases_after(self, port: int, t: float) -> Iterator[Reservation]:
        return self._releases_after(self._in, port, t)

    def output_releases_after(self, port: int, t: float) -> Iterator[Reservation]:
        return self._releases_after(self._out, port, t)

    def input_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        """The reservation covering ``t`` on input port ``port``, if any.

        Body is inlined (rather than sharing a ``_covering`` helper) because
        this is the single hottest query in ``schedule_demand``.
        """
        starts = self._in_starts.get(port)
        if not starts:
            return None
        idx = bisect.bisect_right(starts, t + TIME_EPS) - 1
        if idx >= 0:
            candidate = self._in[port][idx]
            if candidate.start <= t + TIME_EPS and t < candidate.end - TIME_EPS:
                return candidate
        return None

    def output_reservation_at(self, port: int, t: float) -> Optional[Reservation]:
        """The reservation covering ``t`` on output port ``port``, if any."""
        starts = self._out_starts.get(port)
        if not starts:
            return None
        idx = bisect.bisect_right(starts, t + TIME_EPS) - 1
        if idx >= 0:
            candidate = self._out[port][idx]
            if candidate.start <= t + TIME_EPS and t < candidate.end - TIME_EPS:
                return candidate
        return None

    def input_free_at(self, port: int, t: float) -> bool:
        return self.input_reservation_at(port, t) is None

    def output_free_at(self, port: int, t: float) -> bool:
        return self.output_reservation_at(port, t) is None

    @staticmethod
    def _next_start(starts: List[float], t: float) -> float:
        """Earliest reservation start at or after ``t`` (inf if none)."""
        # bisect_left already lands on the first start >= t - eps — a start
        # within eps *before* t still counts as "next" so a zero-length gap
        # is never mistaken for usable port time.
        idx = bisect.bisect_left(starts, t - TIME_EPS)
        return starts[idx] if idx < len(starts) else float("inf")

    def next_reserved_time(self, src: int, dst: int, t: float) -> float:
        """``t_m`` of Algorithm 1 line 16: earliest upcoming reservation start
        on either ``in.src`` or ``out.dst``, at or after ``t`` (inf if none)."""
        next_in = self._next_start(self._in_starts.get(src, []), t)
        next_out = self._next_start(self._out_starts.get(dst, []), t)
        return min(next_in, next_out)

    def release_of_block(
        self, src: int, dst: int, t: float, t_next: float
    ) -> Tuple[float, bool]:
        """Earliest end among the reservations starting at ``t_next``.

        Companion to :meth:`next_reserved_time`: when the free gap
        ``[t, t_next)`` is too small to fit a setup, the circuit stays
        infeasible until the blocking reservation releases its port.  The
        minimum end over both ports' ``t_next``-starting reservations is a
        proven lower bound on when that can change.

        Returns ``(end, on_input)`` — the bound and whether the
        earliest-releasing blocker sits on the input port (so the caller
        knows which port's release to wait for).  ``(inf, True)`` if
        neither port has a blocker, which cannot happen when ``t_next``
        came from :meth:`next_reserved_time` with a finite value.
        """
        end = float("inf")
        on_input = True
        for table, starts_table, port, is_input in (
            (self._in, self._in_starts, src, True),
            (self._out, self._out_starts, dst, False),
        ):
            starts = starts_table.get(port)
            if not starts:
                continue
            idx = bisect.bisect_left(starts, t - TIME_EPS)
            if idx < len(starts) and starts[idx] <= t_next + TIME_EPS:
                candidate = table[port][idx].end
                if candidate < end:
                    end = candidate
                    on_input = is_input
        return end, on_input

    def next_release_after(self, t: float) -> Optional[float]:
        """Earliest reservation end strictly after ``t`` across all ports.

        Algorithm 1 line 10 advances the scheduling clock to this instant.
        """
        idx = bisect.bisect_right(self._ends, t + TIME_EPS)
        if idx < len(self._ends):
            return self._ends[idx]
        return None

    def makespan(self) -> float:
        """Latest reservation end in the table (0 when empty)."""
        return self._ends[-1] if self._ends else 0.0

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def reserve(
        self,
        src: int,
        dst: int,
        start: float,
        end: float,
        coflow_id: int,
        setup: float,
    ) -> Reservation:
        """Reserve circuit ``[in.src, out.dst]`` on ``[start, end)``.

        Raises:
            PortConflictError: if either port is already taken anywhere in
                the interval (Sunflow never preempts).
        """
        reservation = Reservation(
            start=start, end=end, src=src, dst=dst, coflow_id=coflow_id, setup=setup
        )
        self._insert(reservation)
        return reservation

    def _insert(self, reservation: Reservation) -> None:
        """Insert with overlap checks; one bisect per port, reused for both
        the check and the insertion point (this is the hottest PRT write)."""
        in_list = self._in.setdefault(reservation.src, [])
        in_starts = self._in_starts.setdefault(reservation.src, [])
        out_list = self._out.setdefault(reservation.dst, [])
        out_starts = self._out_starts.setdefault(reservation.dst, [])
        idx_in = bisect.bisect_left(in_starts, reservation.start)
        self._check_neighbors(in_list, idx_in, reservation)
        idx_out = bisect.bisect_left(out_starts, reservation.start)
        self._check_neighbors(out_list, idx_out, reservation)
        in_list.insert(idx_in, reservation)
        in_starts.insert(idx_in, reservation.start)
        out_list.insert(idx_out, reservation)
        out_starts.insert(idx_out, reservation.start)
        bisect.insort(self._ends, reservation.end)
        self._reservations.append(reservation)

    @staticmethod
    def _check_neighbors(
        reservations: List[Reservation], idx: int, new: Reservation
    ) -> None:
        """Overlap check against the would-be neighbors at insert point ``idx``."""
        if idx > 0 and reservations[idx - 1].end > new.start + TIME_EPS:
            raise PortConflictError(
                f"{new} overlaps existing {reservations[idx - 1]}"
            )
        if idx < len(reservations) and reservations[idx].start < new.end - TIME_EPS:
            raise PortConflictError(f"{new} overlaps existing {reservations[idx]}")

    def replay(self, reservations: Sequence[Reservation]) -> None:
        """Re-insert already-validated reservations (e.g. a cached Coflow
        plan after a :meth:`rollback`).  Overlap checks still apply, so a
        stale plan that no longer fits raises :class:`PortConflictError`
        instead of corrupting the table.  The call is atomic: on conflict
        the already-inserted prefix is undone before re-raising, matching
        the batched array implementation."""
        inserted = 0
        try:
            for reservation in reservations:
                self._insert(reservation)
                inserted += 1
        except PortConflictError:
            if inserted:
                self.rollback(len(self._reservations) - inserted)
            raise

    # ------------------------------------------------------------------
    # Checkpoint / rollback
    # ------------------------------------------------------------------
    def checkpoint(self) -> int:
        """Token for the current state; pass to :meth:`rollback` to undo
        every reservation made after this point."""
        return len(self._reservations)

    def rollback(self, token: int) -> int:
        """Undo all reservations made after ``checkpoint()`` returned
        ``token`` (most recent first).  Returns the number undone."""
        if token < 0 or token > len(self._reservations):
            raise ValueError(
                f"invalid checkpoint token {token} for table of {len(self._reservations)}"
            )
        undone = 0
        while len(self._reservations) > token:
            reservation = self._reservations.pop()
            self._remove_from_port(
                self._in, self._in_starts, reservation.src, reservation
            )
            self._remove_from_port(
                self._out, self._out_starts, reservation.dst, reservation
            )
            idx = bisect.bisect_left(self._ends, reservation.end)
            # Duplicate end values are interchangeable floats; drop any one.
            del self._ends[idx]
            undone += 1
        return undone

    @staticmethod
    def _remove_from_port(
        table: Dict[int, List[Reservation]],
        starts_table: Dict[int, List[float]],
        port: int,
        reservation: Reservation,
    ) -> None:
        reservations = table[port]
        starts = starts_table[port]
        idx = bisect.bisect_left(starts, reservation.start)
        # Starts are unique per port (reservations never overlap), so the
        # bisect lands exactly on the entry to remove.
        if idx >= len(reservations) or reservations[idx] is not reservation:
            raise ValueError(f"{reservation} not found on port {port}")
        del reservations[idx]
        del starts[idx]

    # ------------------------------------------------------------------
    # Validation (used heavily by the test suite)
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Assert the port constraint holds for every port timeline.

        Raises:
            PortConflictError: if any two reservations overlap on a port.
        """
        for table in (self._in, self._out):
            for port, reservations in table.items():
                for earlier, later in zip(reservations, reservations[1:]):
                    if earlier.end > later.start + TIME_EPS:
                        raise PortConflictError(
                            f"port {port}: {earlier} overlaps {later}"
                        )
