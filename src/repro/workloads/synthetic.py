"""Synthetic Facebook-like Coflow workload (paper §5.1 substitution).

The paper replays a one-hour Facebook Hive/MapReduce trace: ~526 Coflows
on a 150-port fabric, sizes rounded to the megabyte, with the category and
byte mix of Table 4:

==========  ========  ========
category    Coflow %  bytes %
==========  ========  ========
one-to-one      23.4     0.005
one-to-many      9.9     0.024
many-to-one     40.1     0.028
many-to-many    26.6    99.943
==========  ========  ========

The original file is public but not bundled here (no network access), so
this generator synthesizes traces with the same *shape*: the Table-4
category mix, MB-granular sizes floored at 1 MB, narrow/small Coflows for
the non-M2M categories, heavy-tailed mapper/reducer widths and per-reducer
volumes for M2M so that many-to-many traffic carries ≈99.9 % of the bytes,
and exponential inter-arrivals spanning about an hour.  Every draw comes
from a seeded RNG, so traces are reproducible; the generator emits a
:class:`~repro.core.coflow.CoflowTrace` that can be written to the real
trace format via :mod:`repro.workloads.facebook`.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.coflow import Coflow, CoflowCategory, CoflowTrace, Flow
from repro.units import MB


@dataclass
class CategoryMix:
    """Fractions of Coflows per category (defaults from Table 4)."""

    one_to_one: float = 0.234
    one_to_many: float = 0.099
    many_to_one: float = 0.401
    many_to_many: float = 0.266

    def normalized(self) -> List[Tuple[CoflowCategory, float]]:
        total = self.one_to_one + self.one_to_many + self.many_to_one + self.many_to_many
        if total <= 0:
            raise ValueError("category mix must have positive total")
        return [
            (CoflowCategory.ONE_TO_ONE, self.one_to_one / total),
            (CoflowCategory.ONE_TO_MANY, self.one_to_many / total),
            (CoflowCategory.MANY_TO_ONE, self.many_to_one / total),
            (CoflowCategory.MANY_TO_MANY, self.many_to_many / total),
        ]


@dataclass
class GeneratorConfig:
    """Knobs of the Facebook-like generator.

    The defaults reproduce the published trace statistics at full scale;
    tests and the quick benchmark profile shrink ``num_coflows`` and
    ``max_width`` to keep runtimes short without changing the shape.
    """

    num_ports: int = 150
    num_coflows: int = 526
    #: Mean inter-arrival in seconds (the hour-long trace has ≈6.8 s).
    mean_interarrival: float = 6.8
    mix: CategoryMix = field(default_factory=CategoryMix)
    #: Cap on mapper/reducer counts for M2M Coflows (None = num_ports).
    max_width: Optional[int] = None
    #: Narrow-category fan-in/out cap (senders of M2O, receivers of O2M).
    max_narrow_fanout: int = 20
    #: Minimum flow size after rounding (the trace's 1 MB floor).
    min_flow_bytes: float = 1 * MB
    #: Many-to-many per-reducer volumes are a two-mode lognormal mixture:
    #: most shuffles are small (so the per-flow sizes sit near the 1 MB
    #: floor, where circuit setup overhead matters — the regime Figures
    #: 3-5 probe), while a ``m2m_large_fraction`` of heavy shuffles carry
    #: the bulk of the bytes (Table 4's 99.9 % M2M share and the trace's
    #: ≈12 % idleness at 1 Gbps).
    m2m_large_fraction: float = 0.3
    m2m_small_mb_mu: float = 1.5
    m2m_small_mb_sigma: float = 1.2
    m2m_large_mb_mu: float = 8.0
    m2m_large_mb_sigma: float = 1.0
    #: Mean megabytes of flows in the narrow categories.
    narrow_flow_mb_mean: float = 2.0
    seed: int = 2016

    def resolved_max_width(self) -> int:
        width = self.num_ports if self.max_width is None else self.max_width
        return max(2, min(width, self.num_ports))


class FacebookLikeTraceGenerator:
    """Draws Coflow traces matching the published trace statistics."""

    def __init__(self, config: Optional[GeneratorConfig] = None) -> None:
        self.config = config if config is not None else GeneratorConfig()

    def generate(self) -> CoflowTrace:
        """Generate a full trace (sorted by arrival, ids are 1-based)."""
        trace = CoflowTrace(num_ports=self.config.num_ports)
        for coflow in self.iter_coflows():
            trace.add(coflow)
        return trace

    def iter_coflows(self) -> Iterator[Coflow]:
        """Yield the trace's Coflows one at a time, in arrival order.

        Streaming twin of :meth:`generate`: the RNG draw sequence is
        identical, so the two produce bit-identical Coflows — only the
        memory profile differs.  Per-Coflow state is O(1); the category
        list drawn up front is O(num_coflows) enum references (a few MB
        at a million Coflows), kept so the draw order — and therefore the
        RNG stream — matches :meth:`generate` exactly.
        """
        config = self.config
        rng = random.Random(config.seed)
        arrival = 0.0
        categories = self._draw_categories(rng)
        for coflow_id, category in enumerate(categories, start=1):
            arrival += rng.expovariate(1.0 / config.mean_interarrival)
            yield self._draw_coflow(rng, coflow_id, arrival, category)

    # ------------------------------------------------------------------
    def _draw_categories(self, rng: random.Random) -> List[CoflowCategory]:
        """Exact category counts per the mix (remainders to the largest)."""
        mix = self.config.mix.normalized()
        counts: Dict[CoflowCategory, int] = {}
        assigned = 0
        for category, fraction in mix:
            count = int(round(fraction * self.config.num_coflows))
            counts[category] = count
            assigned += count
        # Fix rounding drift on the most common category.
        largest = max(counts, key=lambda c: counts[c])
        counts[largest] += self.config.num_coflows - assigned
        categories: List[CoflowCategory] = []
        for category, count in counts.items():
            categories.extend([category] * max(0, count))
        rng.shuffle(categories)
        return categories

    def _draw_coflow(
        self,
        rng: random.Random,
        coflow_id: int,
        arrival: float,
        category: CoflowCategory,
    ) -> Coflow:
        if category is CoflowCategory.MANY_TO_MANY:
            return self._draw_many_to_many(rng, coflow_id, arrival)
        if category is CoflowCategory.MANY_TO_ONE:
            return self._draw_many_to_one(rng, coflow_id, arrival)
        if category is CoflowCategory.ONE_TO_MANY:
            return self._draw_one_to_many(rng, coflow_id, arrival)
        return self._draw_one_to_one(rng, coflow_id, arrival)

    # ------------------------------------------------------------------
    # Category-specific draws
    # ------------------------------------------------------------------
    def _round_mb(self, size_bytes: float) -> float:
        """Round to the nearest MB with the trace's 1 MB floor."""
        return max(self.config.min_flow_bytes, round(size_bytes / MB) * MB)

    def _narrow_flow_bytes(self, rng: random.Random) -> float:
        """Small flows for the narrow categories (exponential around the mean)."""
        return self._round_mb(
            rng.expovariate(1.0 / self.config.narrow_flow_mb_mean) * MB
        )

    def _ports(self, rng: random.Random, count: int) -> List[int]:
        return rng.sample(range(self.config.num_ports), count)

    def _draw_one_to_one(self, rng, coflow_id: int, arrival: float) -> Coflow:
        src, dst = self._ports(rng, 2)
        return Coflow(
            coflow_id,
            arrival,
            [Flow(src, dst, self._narrow_flow_bytes(rng))],
        )

    def _draw_one_to_many(self, rng, coflow_id: int, arrival: float) -> Coflow:
        fanout = rng.randint(2, min(self.config.max_narrow_fanout, self.config.num_ports - 1))
        ports = self._ports(rng, fanout + 1)
        src, receivers = ports[0], ports[1:]
        flows = [Flow(src, dst, self._narrow_flow_bytes(rng)) for dst in receivers]
        return Coflow(coflow_id, arrival, flows)

    def _draw_many_to_one(self, rng, coflow_id: int, arrival: float) -> Coflow:
        fanin = rng.randint(2, min(self.config.max_narrow_fanout, self.config.num_ports - 1))
        ports = self._ports(rng, fanin + 1)
        dst, senders = ports[0], ports[1:]
        # The trace format records one total per reducer, split evenly over
        # mappers — so an in-cast's subflows are all equal (this equality is
        # exactly what the paper's ±5 % perturbation breaks after loading).
        per_sender = self._narrow_flow_bytes(rng)
        flows = [Flow(src, dst, per_sender) for src in senders]
        return Coflow(coflow_id, arrival, flows)

    def _draw_many_to_many(self, rng, coflow_id: int, arrival: float) -> Coflow:
        width = self.config.resolved_max_width()
        num_mappers = self._heavy_width(rng, width)
        num_reducers = self._heavy_width(rng, width)
        mappers = self._ports(rng, num_mappers)
        reducers = self._ports(rng, num_reducers)
        if rng.random() < self.config.m2m_large_fraction:
            mu, sigma = self.config.m2m_large_mb_mu, self.config.m2m_large_mb_sigma
        else:
            mu, sigma = self.config.m2m_small_mb_mu, self.config.m2m_small_mb_sigma
        flows: List[Flow] = []
        for dst in reducers:
            reducer_total_mb = math.exp(rng.gauss(mu, sigma))
            per_mapper = self._round_mb(reducer_total_mb * MB / num_mappers)
            for src in mappers:
                flows.append(Flow(src, dst, per_mapper))
        return Coflow(coflow_id, arrival, flows)

    @staticmethod
    def _heavy_width(rng: random.Random, max_width: int) -> int:
        """Heavy-tailed width in [2, max_width]: most shuffles are narrow,
        a few span a large share of the fabric."""
        # Pareto-like: P(width > w) ~ w^-1.1, truncated.
        raw = 2.0 * (rng.random() ** (-1.0 / 1.1))
        return int(max(2, min(max_width, round(raw))))


def paper_trace(
    seed: int = 2016,
    num_coflows: int = 526,
    num_ports: int = 150,
    max_width: Optional[int] = None,
) -> CoflowTrace:
    """Convenience: a paper-scale Facebook-like trace."""
    config = GeneratorConfig(
        num_ports=num_ports,
        num_coflows=num_coflows,
        max_width=max_width,
        seed=seed,
    )
    return FacebookLikeTraceGenerator(config).generate()
