"""Facebook Hive/MapReduce Coflow trace format (paper §5.1).

The paper's workload is the public ``coflow-benchmark`` trace
(https://github.com/coflow/coflow-benchmark): one hour of Hive/MapReduce
shuffles from a 3000-machine, 150-rack Facebook cluster, with exact
inter-arrival times and sizes rounded to the nearest megabyte.

File format (whitespace separated)::

    <num_ports> <num_coflows>
    <id> <arrival_millis> <M> <m_1> … <m_M> <R> <r_1:MB_1> … <r_R:MB_R>

Each line is one Coflow: ``M`` mapper racks, then ``R`` reducer entries,
where ``r:MB`` says the reducer on rack ``r`` receives ``MB`` megabytes in
total.  Following the conventions of the Varys/Aalo simulators, that total
is split evenly across the ``M`` mappers, giving an ``M × R`` demand
matrix per Coflow.

This module reads and writes that exact format, so the real trace drops in
unchanged; :mod:`repro.workloads.synthetic` generates statistically
matching traces when the original file is unavailable.

Reading is *streaming*: :class:`TraceReader` parses the header eagerly and
then yields one :class:`~repro.core.coflow.Coflow` per record as you
iterate, holding only the current line in memory — a trace of any length
can feed the replay engine directly.  :func:`parse_trace` remains the
materializing convenience wrapper around it.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Iterator, List, Optional, TextIO, Union

from repro.core.coflow import Coflow, CoflowTrace, Flow
from repro.units import MB


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the coflow-benchmark format."""


def _parse_reducer(token: str, line_number: int) -> tuple:
    try:
        rack_text, size_text = token.split(":", 1)
        return int(rack_text), float(size_text)
    except ValueError as error:
        raise TraceFormatError(
            f"line {line_number}: bad reducer token {token!r} (want rack:MB)"
        ) from error


def _parse_record(line: str, line_number: int) -> Coflow:
    """Parse one non-blank data line into a Coflow."""
    tokens = line.split()
    cursor = 0

    def take(count: int = 1) -> List[str]:
        nonlocal cursor
        if cursor + count > len(tokens):
            raise TraceFormatError(f"line {line_number}: truncated record")
        chunk = tokens[cursor : cursor + count]
        cursor += count
        return chunk

    coflow_id = int(take()[0])
    arrival_seconds = float(take()[0]) / 1000.0
    num_mappers = int(take()[0])
    mappers = [int(token) for token in take(num_mappers)]
    num_reducers = int(take()[0])
    reducer_tokens = take(num_reducers)
    if cursor != len(tokens):
        raise TraceFormatError(f"line {line_number}: trailing tokens")

    flows: List[Flow] = []
    for token in reducer_tokens:
        reducer, total_mb = _parse_reducer(token, line_number)
        per_mapper_bytes = total_mb * MB / num_mappers
        for mapper in mappers:
            if per_mapper_bytes > 0:
                flows.append(Flow(src=mapper, dst=reducer, size_bytes=per_mapper_bytes))
    return Coflow(coflow_id=coflow_id, arrival_time=arrival_seconds, flows=flows)


class TraceReader:
    """Streaming reader over a coflow-benchmark trace.

    Parses the header on construction (so ``num_ports``/``num_coflows``
    are available before any record is read), then yields one Coflow per
    iteration without ever materializing the file.  The header's Coflow
    count is validated lazily: a mismatch raises :class:`TraceFormatError`
    when the discrepancy becomes observable (the end of the file, or a
    record past the promised count), with the same message the eager
    parser used.

    Use as a context manager when the reader owns the file handle::

        with TraceReader.open(path) as reader:
            for coflow in reader:
                ...
    """

    def __init__(self, stream: TextIO, owns_stream: bool = False) -> None:
        self._stream = stream
        self._owns_stream = owns_stream
        self._consumed = False
        header_line: Optional[str] = None
        for line in stream:
            line = line.strip()
            if line:
                header_line = line
                break
        if header_line is None:
            raise TraceFormatError("empty trace file")
        header = header_line.split()
        if len(header) != 2:
            raise TraceFormatError(f"bad header {header_line!r} (want '<ports> <coflows>')")
        self.num_ports = int(header[0])
        self.num_coflows = int(header[1])

    @classmethod
    def open(cls, source: Union[str, Path, TextIO]) -> "TraceReader":
        """Open a reader over a path, raw trace text, or open stream."""
        if isinstance(source, (str, Path)):
            text = str(source)
            if "\n" in text:
                return cls(io.StringIO(text), owns_stream=True)
            return cls(open(text, "r", encoding="utf-8"), owns_stream=True)
        return cls(source)

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def __iter__(self) -> Iterator[Coflow]:
        if self._consumed:
            raise RuntimeError("TraceReader is forward-only; reopen to re-read")
        self._consumed = True
        # Non-blank lines are numbered from 1 (the header), matching the
        # eager parser's error messages.
        line_number = 1
        parsed = 0
        for line in self._stream:
            line = line.strip()
            if not line:
                continue
            line_number += 1
            if parsed >= self.num_coflows:
                # Too many records: count the rest so the error reports
                # the file's true size, as the eager parser did.
                extra = 1
                for rest in self._stream:
                    if rest.strip():
                        extra += 1
                raise TraceFormatError(
                    f"header promises {self.num_coflows} coflows but file has "
                    f"{parsed + extra}"
                )
            yield _parse_record(line, line_number)
            parsed += 1
        if parsed != self.num_coflows:
            raise TraceFormatError(
                f"header promises {self.num_coflows} coflows but file has {parsed}"
            )


def iter_trace(source: Union[str, Path, TextIO]) -> Iterator[Coflow]:
    """Yield the Coflows of a trace one at a time (O(1) memory).

    Convenience generator over :class:`TraceReader` for callers that do
    not need the header; the file handle (when this function opened one)
    is closed when the generator is exhausted or discarded.
    """
    with TraceReader.open(source) as reader:
        yield from reader


def parse_trace(source: Union[str, Path, TextIO]) -> CoflowTrace:
    """Parse a coflow-benchmark trace file into a :class:`CoflowTrace`.

    Thin materializing wrapper around :class:`TraceReader` — use the
    reader directly (or :func:`iter_trace`) when the trace is too large
    to hold in memory.

    Args:
        source: path to the trace file, or an open text stream, or the raw
            trace text itself (anything containing a newline is treated as
            text).

    Returns:
        Trace with arrival times in seconds and flow sizes in bytes.
    """
    with TraceReader.open(source) as reader:
        trace = CoflowTrace(num_ports=reader.num_ports)
        for coflow in reader:
            trace.add(coflow)
    return trace


def write_trace(trace: CoflowTrace, destination: Union[str, Path, TextIO]) -> None:
    """Write a trace in the coflow-benchmark format.

    Flows are grouped back into mapper sets and per-reducer megabyte
    totals.  Sizes are written with enough precision to round-trip
    MB-granular traces exactly.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as stream:
            _write_stream(trace, stream)
    else:
        _write_stream(trace, destination)


def _write_stream(trace: CoflowTrace, stream: TextIO) -> None:
    stream.write(f"{trace.num_ports} {len(trace)}\n")
    for coflow in trace:
        mappers = coflow.senders
        reducer_totals = {}
        for flow in coflow.flows:
            reducer_totals[flow.dst] = reducer_totals.get(flow.dst, 0.0) + flow.size_bytes
        parts = [str(coflow.coflow_id), _format_number(coflow.arrival_time * 1000.0)]
        parts.append(str(len(mappers)))
        parts.extend(str(mapper) for mapper in mappers)
        parts.append(str(len(reducer_totals)))
        for reducer in sorted(reducer_totals):
            parts.append(f"{reducer}:{_format_number(reducer_totals[reducer] / MB)}")
        stream.write(" ".join(parts) + "\n")


def _format_number(value: float) -> str:
    """Render integers without a trailing '.0', floats compactly."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
