"""Facebook Hive/MapReduce Coflow trace format (paper §5.1).

The paper's workload is the public ``coflow-benchmark`` trace
(https://github.com/coflow/coflow-benchmark): one hour of Hive/MapReduce
shuffles from a 3000-machine, 150-rack Facebook cluster, with exact
inter-arrival times and sizes rounded to the nearest megabyte.

File format (whitespace separated)::

    <num_ports> <num_coflows>
    <id> <arrival_millis> <M> <m_1> … <m_M> <R> <r_1:MB_1> … <r_R:MB_R>

Each line is one Coflow: ``M`` mapper racks, then ``R`` reducer entries,
where ``r:MB`` says the reducer on rack ``r`` receives ``MB`` megabytes in
total.  Following the conventions of the Varys/Aalo simulators, that total
is split evenly across the ``M`` mappers, giving an ``M × R`` demand
matrix per Coflow.

This module reads and writes that exact format, so the real trace drops in
unchanged; :mod:`repro.workloads.synthetic` generates statistically
matching traces when the original file is unavailable.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, TextIO, Union

from repro.core.coflow import Coflow, CoflowTrace, Flow
from repro.units import MB


class TraceFormatError(ValueError):
    """Raised when a trace file does not follow the coflow-benchmark format."""


def _parse_reducer(token: str, line_number: int) -> tuple:
    try:
        rack_text, size_text = token.split(":", 1)
        return int(rack_text), float(size_text)
    except ValueError as error:
        raise TraceFormatError(
            f"line {line_number}: bad reducer token {token!r} (want rack:MB)"
        ) from error


def parse_trace(source: Union[str, Path, TextIO]) -> CoflowTrace:
    """Parse a coflow-benchmark trace file into a :class:`CoflowTrace`.

    Args:
        source: path to the trace file, or an open text stream, or the raw
            trace text itself (anything containing a newline is treated as
            text).

    Returns:
        Trace with arrival times in seconds and flow sizes in bytes.
    """
    if isinstance(source, (str, Path)):
        text = str(source)
        if "\n" in text:
            stream: TextIO = io.StringIO(text)
        else:
            stream = open(text, "r", encoding="utf-8")
        with stream:
            return _parse_stream(stream)
    return _parse_stream(source)


def _parse_stream(stream: TextIO) -> CoflowTrace:
    lines = [line.strip() for line in stream if line.strip()]
    if not lines:
        raise TraceFormatError("empty trace file")
    header = lines[0].split()
    if len(header) != 2:
        raise TraceFormatError(f"bad header {lines[0]!r} (want '<ports> <coflows>')")
    num_ports, num_coflows = int(header[0]), int(header[1])
    if len(lines) - 1 != num_coflows:
        raise TraceFormatError(
            f"header promises {num_coflows} coflows but file has {len(lines) - 1}"
        )

    trace = CoflowTrace(num_ports=num_ports)
    for line_number, line in enumerate(lines[1:], start=2):
        tokens = line.split()
        cursor = 0

        def take(count: int = 1) -> List[str]:
            nonlocal cursor
            if cursor + count > len(tokens):
                raise TraceFormatError(f"line {line_number}: truncated record")
            chunk = tokens[cursor : cursor + count]
            cursor += count
            return chunk

        coflow_id = int(take()[0])
        arrival_seconds = float(take()[0]) / 1000.0
        num_mappers = int(take()[0])
        mappers = [int(token) for token in take(num_mappers)]
        num_reducers = int(take()[0])
        reducer_tokens = take(num_reducers)
        if cursor != len(tokens):
            raise TraceFormatError(f"line {line_number}: trailing tokens")

        flows: List[Flow] = []
        for token in reducer_tokens:
            reducer, total_mb = _parse_reducer(token, line_number)
            per_mapper_bytes = total_mb * MB / num_mappers
            for mapper in mappers:
                if per_mapper_bytes > 0:
                    flows.append(Flow(src=mapper, dst=reducer, size_bytes=per_mapper_bytes))
        trace.add(Coflow(coflow_id=coflow_id, arrival_time=arrival_seconds, flows=flows))
    return trace


def write_trace(trace: CoflowTrace, destination: Union[str, Path, TextIO]) -> None:
    """Write a trace in the coflow-benchmark format.

    Flows are grouped back into mapper sets and per-reducer megabyte
    totals.  Sizes are written with enough precision to round-trip
    MB-granular traces exactly.
    """
    if isinstance(destination, (str, Path)):
        with open(destination, "w", encoding="utf-8") as stream:
            _write_stream(trace, stream)
    else:
        _write_stream(trace, destination)


def _write_stream(trace: CoflowTrace, stream: TextIO) -> None:
    stream.write(f"{trace.num_ports} {len(trace)}\n")
    for coflow in trace:
        mappers = coflow.senders
        reducer_totals = {}
        for flow in coflow.flows:
            reducer_totals[flow.dst] = reducer_totals.get(flow.dst, 0.0) + flow.size_bytes
        parts = [str(coflow.coflow_id), _format_number(coflow.arrival_time * 1000.0)]
        parts.append(str(len(mappers)))
        parts.extend(str(mapper) for mapper in mappers)
        parts.append(str(len(reducer_totals)))
        for reducer in sorted(reducer_totals):
            parts.append(f"{reducer}:{_format_number(reducer_totals[reducer] / MB)}")
        stream.write(" ".join(parts) + "\n")


def _format_number(value: float) -> str:
    """Render integers without a trailing '.0', floats compactly."""
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))
