"""Compact on-disk Coflow trace format and chunked arrival iterators.

The text coflow-benchmark format (:mod:`repro.workloads.facebook`) is
what the paper's trace ships as, but at a million Coflows its parse cost
and redundancy dominate.  This module defines a binary twin sized for
streaming replay — the ``SFTR`` (SunFlow TRace) format — plus the
iterator plumbing that feeds :func:`repro.sim.engine.run_replay_stream`
without a full Coflow list ever existing in memory.

``SFTR`` layout (little-endian, version 1)::

    header   : magic b"SFTR" | u16 version | u32 num_ports | u64 num_coflows
    per record: i64 coflow_id | f64 arrival_seconds | u32 num_flows
                then num_flows × (u32 src | u32 dst | f64 size_bytes)

The writer patches ``num_coflows`` into the header on close (so traces
can be written from generators of unknown length — a seekable
destination is required).  The reader decodes records lazily from a
buffered stream, holding one Coflow at a time, and validates as it goes:
magic/version, port bounds, and non-decreasing arrival times (the
replay-loop precondition — a violation here fails fast instead of
corrupting a simulation thousands of events later).

:class:`ArrivalStream` is the thin carrier the facade and CLI hand to
the streaming simulator: a port count, a length hint, and a lazy Coflow
iterable — the streaming analogue of
:class:`~repro.core.coflow.CoflowTrace`.
"""

from __future__ import annotations

import io
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, List, Optional, Union

from repro.core.coflow import Coflow, CoflowTrace, Flow

#: File magic for the binary trace format.
STREAM_TRACE_MAGIC = b"SFTR"
#: Current format version (bump on any layout change).
STREAM_TRACE_VERSION = 1

_HEADER = struct.Struct("<4sHIQ")
_RECORD_HEAD = struct.Struct("<qdI")
_FLOW = struct.Struct("<IId")

#: Flows decoded per struct.iter_unpack batch in the reader — the unit of
#: chunked I/O (records are read via the stream's own buffering on top).
_FLOW_BATCH = 4096


class StreamTraceError(ValueError):
    """Raised when a binary trace is malformed or violates an invariant."""


class StreamTraceWriter:
    """Incremental writer for the ``SFTR`` binary trace format.

    Coflows are appended one at a time (from any source — a generator, a
    conversion loop), so writing is O(1) in trace length.  Arrival times
    must be non-decreasing; the Coflow count is patched into the header
    when the writer closes, which requires ``destination`` to be
    seekable.

    Use as a context manager::

        with StreamTraceWriter(path, num_ports=150) as writer:
            for coflow in generator.iter_coflows():
                writer.write(coflow)
    """

    def __init__(self, destination: Union[str, Path, BinaryIO], num_ports: int) -> None:
        if num_ports <= 0:
            raise ValueError(f"port count must be positive, got {num_ports!r}")
        if isinstance(destination, (str, Path)):
            self._stream: BinaryIO = open(destination, "wb")
            self._owns_stream = True
        else:
            self._stream = destination
            self._owns_stream = False
        if not self._stream.seekable():
            raise StreamTraceError(
                "stream trace destination must be seekable (the coflow count "
                "is patched into the header on close)"
            )
        self.num_ports = num_ports
        self.count = 0
        self._last_arrival = float("-inf")
        self._closed = False
        self._header_offset = self._stream.tell()
        # Count placeholder; rewritten by close().
        self._stream.write(
            _HEADER.pack(STREAM_TRACE_MAGIC, STREAM_TRACE_VERSION, num_ports, 0)
        )

    def write(self, coflow: Coflow) -> None:
        """Append one Coflow (validates ports and arrival monotonicity)."""
        if self._closed:
            raise StreamTraceError("writer is closed")
        if coflow.arrival_time < self._last_arrival:
            raise StreamTraceError(
                f"coflow {coflow.coflow_id} arrives at {coflow.arrival_time} "
                f"before previous arrival {self._last_arrival}; stream traces "
                "must be sorted by arrival time"
            )
        parts = [_RECORD_HEAD.pack(coflow.coflow_id, coflow.arrival_time, len(coflow.flows))]
        for flow in coflow.flows:
            if flow.src >= self.num_ports or flow.dst >= self.num_ports:
                raise StreamTraceError(
                    f"coflow {coflow.coflow_id} uses port ({flow.src}, {flow.dst}) "
                    f"outside a {self.num_ports}-port fabric"
                )
            parts.append(_FLOW.pack(flow.src, flow.dst, flow.size_bytes))
        self._stream.write(b"".join(parts))
        self._last_arrival = coflow.arrival_time
        self.count += 1

    def write_all(self, coflows: Iterable[Coflow]) -> int:
        """Append every Coflow from an iterable; returns how many."""
        written = 0
        for coflow in coflows:
            self.write(coflow)
            written += 1
        return written

    def close(self) -> None:
        """Patch the header count and release the stream."""
        if self._closed:
            return
        self._closed = True
        end = self._stream.tell()
        self._stream.seek(self._header_offset)
        self._stream.write(
            _HEADER.pack(STREAM_TRACE_MAGIC, STREAM_TRACE_VERSION, self.num_ports, self.count)
        )
        self._stream.seek(end)
        if self._owns_stream:
            self._stream.close()
        else:
            self._stream.flush()

    def __enter__(self) -> "StreamTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StreamTraceReader:
    """Lazy reader for the ``SFTR`` binary trace format.

    The header is decoded on construction; iteration then yields one
    :class:`~repro.core.coflow.Coflow` at a time from the buffered
    stream, so memory is bounded by the largest single Coflow, not the
    trace.  Every record is validated against the header's port count and
    the non-decreasing-arrival invariant the replay loop requires.
    """

    def __init__(self, source: Union[str, Path, BinaryIO]) -> None:
        if isinstance(source, (str, Path)):
            self._stream: BinaryIO = open(source, "rb")
            self._owns_stream = True
        else:
            self._stream = source
            self._owns_stream = False
        self._consumed = False
        header = self._stream.read(_HEADER.size)
        if len(header) < _HEADER.size:
            raise StreamTraceError("truncated stream trace header")
        magic, version, num_ports, num_coflows = _HEADER.unpack(header)
        if magic != STREAM_TRACE_MAGIC:
            raise StreamTraceError(
                f"bad magic {magic!r} (want {STREAM_TRACE_MAGIC!r}); "
                "not a binary stream trace"
            )
        if version != STREAM_TRACE_VERSION:
            raise StreamTraceError(
                f"unsupported stream trace version {version} "
                f"(this reader handles {STREAM_TRACE_VERSION})"
            )
        if num_ports <= 0:
            raise StreamTraceError(f"port count must be positive, got {num_ports}")
        self.num_ports = num_ports
        self.num_coflows = num_coflows

    def __enter__(self) -> "StreamTraceReader":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if self._owns_stream:
            self._stream.close()

    def _read_exact(self, size: int, what: str) -> bytes:
        data = self._stream.read(size)
        if len(data) < size:
            raise StreamTraceError(f"truncated stream trace: short read in {what}")
        return data

    def __iter__(self) -> Iterator[Coflow]:
        if self._consumed:
            raise RuntimeError("StreamTraceReader is forward-only; reopen to re-read")
        self._consumed = True
        last_arrival = float("-inf")
        for index in range(self.num_coflows):
            head = self._read_exact(_RECORD_HEAD.size, f"record {index} header")
            coflow_id, arrival, num_flows = _RECORD_HEAD.unpack(head)
            if arrival < last_arrival:
                raise StreamTraceError(
                    f"coflow {coflow_id} arrives at {arrival} before previous "
                    f"arrival {last_arrival}; stream traces must be sorted by "
                    "arrival time"
                )
            flows: List[Flow] = []
            remaining = num_flows
            while remaining > 0:
                batch = min(remaining, _FLOW_BATCH)
                blob = self._read_exact(
                    _FLOW.size * batch, f"flows of coflow {coflow_id}"
                )
                for src, dst, size_bytes in _FLOW.iter_unpack(blob):
                    if src >= self.num_ports or dst >= self.num_ports:
                        raise StreamTraceError(
                            f"coflow {coflow_id} uses port ({src}, {dst}) outside "
                            f"a {self.num_ports}-port fabric"
                        )
                    flows.append(Flow(src=src, dst=dst, size_bytes=size_bytes))
                remaining -= batch
            yield Coflow(coflow_id=coflow_id, arrival_time=arrival, flows=flows)
            last_arrival = arrival
        trailing = self._stream.read(1)
        if trailing:
            raise StreamTraceError(
                f"trailing bytes after {self.num_coflows} promised coflows"
            )


@dataclass
class ArrivalStream:
    """A lazy, arrival-ordered Coflow source over a fixed fabric.

    The streaming analogue of :class:`~repro.core.coflow.CoflowTrace`:
    what the facade hands to the streaming simulator.  ``coflows`` may be
    any single-pass iterable (a :class:`StreamTraceReader`, a generator,
    or a plain list); ``length_hint`` is advisory (progress reporting,
    benchmark labels) and may be ``None`` for unbounded sources.
    """

    num_ports: int
    coflows: Iterable[Coflow] = field(repr=False)
    length_hint: Optional[int] = None

    def __iter__(self) -> Iterator[Coflow]:
        return iter(self.coflows)

    def close(self) -> None:
        """Release the underlying source (a no-op for plain iterables)."""
        closer = getattr(self.coflows, "close", None)
        if closer is not None:
            closer()

    def __enter__(self) -> "ArrivalStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Convenience constructors and adapters
# ----------------------------------------------------------------------
def write_stream_trace(
    destination: Union[str, Path, BinaryIO],
    coflows: Iterable[Coflow],
    num_ports: int,
) -> int:
    """Write an iterable of Coflows as a binary stream trace; returns count."""
    with StreamTraceWriter(destination, num_ports=num_ports) as writer:
        return writer.write_all(coflows)


def open_stream_trace(source: Union[str, Path, BinaryIO]) -> ArrivalStream:
    """Open a binary trace as an :class:`ArrivalStream` (lazy records)."""
    reader = StreamTraceReader(source)
    return ArrivalStream(
        num_ports=reader.num_ports,
        coflows=reader,
        length_hint=reader.num_coflows,
    )


def read_stream_trace(source: Union[str, Path, BinaryIO]) -> CoflowTrace:
    """Materialize a binary stream trace (small traces, tests, conversion)."""
    with StreamTraceReader(source) as reader:
        trace = CoflowTrace(num_ports=reader.num_ports)
        for coflow in reader:
            trace.add(coflow)
    return trace


def convert_text_trace(
    source,
    destination: Union[str, Path, BinaryIO],
) -> int:
    """Convert a text coflow-benchmark trace to the binary format, streaming.

    Both sides are incremental, so the conversion itself runs in O(1)
    memory.  Returns the number of Coflows converted.
    """
    from repro.workloads.facebook import TraceReader

    with TraceReader.open(source) as reader:
        with StreamTraceWriter(destination, num_ports=reader.num_ports) as writer:
            return writer.write_all(reader)


def stream_synthetic(config=None) -> ArrivalStream:
    """Stream the Facebook-like synthetic workload without materializing it.

    Wraps :meth:`FacebookLikeTraceGenerator.iter_coflows`, whose draws are
    bit-identical to :meth:`generate` — the differential suites rely on
    this adapter and the in-memory trace agreeing Coflow for Coflow.
    """
    from repro.workloads.synthetic import FacebookLikeTraceGenerator, GeneratorConfig

    generator = FacebookLikeTraceGenerator(config if config is not None else GeneratorConfig())
    return ArrivalStream(
        num_ports=generator.config.num_ports,
        coflows=generator.iter_coflows(),
        length_hint=generator.config.num_coflows,
    )


def stream_facebook(source) -> ArrivalStream:
    """Stream a text coflow-benchmark trace file (header read eagerly)."""
    from repro.workloads.facebook import TraceReader

    reader = TraceReader.open(source)
    return ArrivalStream(
        num_ports=reader.num_ports,
        coflows=reader,
        length_hint=reader.num_coflows,
    )


def is_stream_trace(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the binary trace magic."""
    try:
        with open(path, "rb") as stream:
            return stream.read(len(STREAM_TRACE_MAGIC)) == STREAM_TRACE_MAGIC
    except OSError:
        return False


def open_any_trace(path: Union[str, Path]) -> ArrivalStream:
    """Open a trace file of either format as a lazy :class:`ArrivalStream`.

    Sniffs the binary magic; anything else is parsed as the text
    coflow-benchmark format.
    """
    if is_stream_trace(path):
        return open_stream_trace(path)
    return stream_facebook(path)


def iter_chunks(coflows: Iterable[Coflow], chunk_size: int) -> Iterator[List[Coflow]]:
    """Group a Coflow iterable into lists of at most ``chunk_size``.

    For callers that batch work per chunk (bulk conversion, sharded
    preprocessing).  The replay engine itself consumes one Coflow at a
    time and does not need chunking.
    """
    if chunk_size <= 0:
        raise ValueError(f"chunk size must be positive, got {chunk_size!r}")
    chunk: List[Coflow] = []
    for coflow in coflows:
        chunk.append(coflow)
        if len(chunk) >= chunk_size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


__all__ = [
    "STREAM_TRACE_MAGIC",
    "STREAM_TRACE_VERSION",
    "StreamTraceError",
    "StreamTraceWriter",
    "StreamTraceReader",
    "ArrivalStream",
    "write_stream_trace",
    "open_stream_trace",
    "read_stream_trace",
    "convert_text_trace",
    "stream_synthetic",
    "stream_facebook",
    "is_stream_trace",
    "open_any_trace",
    "iter_chunks",
]
