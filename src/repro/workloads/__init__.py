"""Workloads: the Facebook trace format, a statistically matching
synthetic generator, and the evaluation's trace transforms."""

from repro.workloads.facebook import TraceFormatError, parse_trace, write_trace
from repro.workloads.patterns import (
    broadcast,
    hotspot,
    incast,
    one_to_one,
    permutation,
    shuffle,
)
from repro.workloads.synthetic import (
    CategoryMix,
    FacebookLikeTraceGenerator,
    GeneratorConfig,
    paper_trace,
)
from repro.workloads.transforms import (
    perturb_sizes,
    scale_bytes,
    scale_to_idleness,
)

__all__ = [
    "TraceFormatError",
    "broadcast",
    "hotspot",
    "incast",
    "one_to_one",
    "permutation",
    "shuffle",
    "parse_trace",
    "write_trace",
    "CategoryMix",
    "FacebookLikeTraceGenerator",
    "GeneratorConfig",
    "paper_trace",
    "perturb_sizes",
    "scale_bytes",
    "scale_to_idleness",
]
