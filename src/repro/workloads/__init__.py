"""Workloads: the Facebook trace format, a statistically matching
synthetic generator, a binary streaming trace format, and the
evaluation's trace transforms."""

from repro.workloads.facebook import (
    TraceFormatError,
    TraceReader,
    iter_trace,
    parse_trace,
    write_trace,
)
from repro.workloads.patterns import (
    broadcast,
    hotspot,
    incast,
    one_to_one,
    permutation,
    shuffle,
)
from repro.workloads.synthetic import (
    CategoryMix,
    FacebookLikeTraceGenerator,
    GeneratorConfig,
    paper_trace,
)
from repro.workloads.stream import (
    ArrivalStream,
    StreamTraceError,
    StreamTraceReader,
    StreamTraceWriter,
    convert_text_trace,
    is_stream_trace,
    iter_chunks,
    open_any_trace,
    open_stream_trace,
    read_stream_trace,
    stream_facebook,
    stream_synthetic,
    write_stream_trace,
)
from repro.workloads.transforms import (
    perturb_sizes,
    perturb_sizes_iter,
    scale_bytes,
    scale_to_idleness,
)

__all__ = [
    "TraceFormatError",
    "TraceReader",
    "iter_trace",
    "ArrivalStream",
    "StreamTraceError",
    "StreamTraceReader",
    "StreamTraceWriter",
    "convert_text_trace",
    "is_stream_trace",
    "iter_chunks",
    "open_any_trace",
    "open_stream_trace",
    "read_stream_trace",
    "stream_facebook",
    "stream_synthetic",
    "write_stream_trace",
    "broadcast",
    "hotspot",
    "incast",
    "one_to_one",
    "permutation",
    "shuffle",
    "parse_trace",
    "write_trace",
    "CategoryMix",
    "FacebookLikeTraceGenerator",
    "GeneratorConfig",
    "paper_trace",
    "perturb_sizes",
    "perturb_sizes_iter",
    "scale_bytes",
    "scale_to_idleness",
]
