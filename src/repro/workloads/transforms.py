"""Trace transformations used by the paper's evaluation (§5.1, §5.4).

* **Perturbation** — the trace rounds sizes to the megabyte, so many
  subflows are exactly equal; the paper adds ±5 % size noise, floored at
  1 MB, which also pins Lemma 2's ``α`` to 1.25 and the CCT/``T^p_L``
  bound to 4.5 at 1 Gbps / δ = 10 ms.
* **Byte scaling to a target idleness** — §5.4 evaluates inter-Coflow
  scheduling under 12/20/40/81/98 % network idleness by scaling Coflow
  byte sizes while preserving structure.  Idleness is monotone in the
  scale factor, so a bisection finds the factor for any achievable target.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.analysis.idleness import network_idleness
from repro.core.coflow import Coflow, CoflowTrace
from repro.units import MB


def demand_seconds_matrix(
    coflow: Coflow, num_ports: int, bandwidth_bps: float
) -> np.ndarray:
    """Densify a Coflow's processing times into an ``N × N`` float64 ndarray.

    The ndarray entry point of the scheduler pipeline: the result feeds
    :meth:`repro.schedulers.base.AssignmentScheduler` implementations via
    sparse conversion and :func:`repro.sim.assignment_exec.execute_assignments`
    directly, staying contiguous ``float64`` end to end.
    """
    matrix = np.zeros((num_ports, num_ports), dtype=np.float64)
    for (src, dst), seconds in coflow.processing_times(bandwidth_bps).items():
        if src >= num_ports or dst >= num_ports:
            raise ValueError(
                f"circuit ({src}, {dst}) outside a {num_ports}-port fabric"
            )
        if seconds > 0:
            matrix[src, dst] += seconds
    return matrix


def perturb_sizes(
    trace: CoflowTrace,
    fraction: float = 0.05,
    min_bytes: float = 1 * MB,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> CoflowTrace:
    """Add uniform ±``fraction`` noise to every flow size, floored at ``min_bytes``."""
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction!r}")
    source = rng if rng is not None else random.Random(seed)

    def noisy(flow) -> float:
        factor = 1.0 + source.uniform(-fraction, fraction)
        return max(min_bytes, flow.size_bytes * factor)

    return trace.map_sizes(noisy)


def perturb_sizes_iter(
    coflows: Iterable[Coflow],
    fraction: float = 0.05,
    min_bytes: float = 1 * MB,
    seed: int = 0,
) -> Iterator[Coflow]:
    """Streaming twin of :func:`perturb_sizes` — O(1) memory.

    Walks one RNG over Coflows in iteration order and flows in flow order,
    exactly as :func:`perturb_sizes` does over a materialized trace, so
    both produce bit-identical sizes for the same Coflow sequence; the
    streaming facade relies on this to keep perturbed replays comparable
    with the in-memory path.
    """
    if not 0 <= fraction < 1:
        raise ValueError(f"fraction must be in [0, 1), got {fraction!r}")
    source = random.Random(seed)
    from repro.core.coflow import Flow

    for coflow in coflows:
        flows = []
        for flow in coflow.flows:
            factor = 1.0 + source.uniform(-fraction, fraction)
            flows.append(
                Flow(flow.src, flow.dst, max(min_bytes, flow.size_bytes * factor))
            )
        yield Coflow(coflow.coflow_id, coflow.arrival_time, flows)


def scale_bytes(trace: CoflowTrace, factor: float, min_bytes: float = 0.0) -> CoflowTrace:
    """Multiply every flow size by ``factor`` (optionally floored)."""
    if factor <= 0:
        raise ValueError(f"scale factor must be positive, got {factor!r}")
    return trace.map_sizes(lambda flow: max(min_bytes, flow.size_bytes * factor))


def scale_to_idleness(
    trace: CoflowTrace,
    bandwidth_bps: float,
    target: float,
    tolerance: float = 0.005,
    max_iterations: int = 60,
) -> CoflowTrace:
    """Scale Coflow bytes so the trace attains ``target`` network idleness.

    Larger Coflows stay active longer, so idleness decreases monotonically
    in the scale factor; a bracketing bisection converges to within
    ``tolerance``.  Structure (endpoints, relative sizes, arrivals) is
    preserved, exactly as §5.4 requires.

    Raises:
        ValueError: if the target is outside (0, 1) or unattainable (even
            infinitesimal Coflows cannot push idleness above the fraction
            of time with no arrivals at all).
    """
    if not 0 < target < 1:
        raise ValueError(f"target idleness must be in (0, 1), got {target!r}")

    def idleness_at(factor: float) -> float:
        return network_idleness(scale_bytes(trace, factor), bandwidth_bps)

    low, high = 1.0, 1.0
    # Bracket the target: smaller factor -> more idleness.
    current = idleness_at(1.0)
    if current < target:
        while idleness_at(low) < target:
            low /= 2.0
            if low < 1e-9:
                raise ValueError(
                    f"target idleness {target} unattainable: even near-zero "
                    "sizes leave the network busier than that"
                )
        high = low * 2.0
    elif current > target:
        while idleness_at(high) > target:
            high *= 2.0
            if high > 1e9:
                raise ValueError(
                    f"target idleness {target} unattainable by growing sizes"
                )
        low = high / 2.0
    else:
        return trace

    factor = 1.0
    for _ in range(max_iterations):
        factor = (low + high) / 2.0
        achieved = idleness_at(factor)
        if abs(achieved - target) <= tolerance:
            break
        if achieved < target:
            high = factor
        else:
            low = factor
    return scale_bytes(trace, factor)
