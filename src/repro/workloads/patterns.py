"""Canonical Coflow communication patterns (paper §2.2).

"A Coflow can represent any communication pattern, such as many-to-many,
one-to-many, many-to-one and one-to-one."  These constructors build the
classic shapes used throughout the tests, examples and micro-benchmarks:
shuffles, incasts, broadcasts, permutations and hotspots — each with
explicit port sets and sizes rather than sampled ones (for sampled
workloads see :mod:`repro.workloads.synthetic`).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.core.coflow import Coflow

Circuit = Tuple[int, int]


def _check_disjoint_sizes(size_bytes: float) -> None:
    if size_bytes <= 0:
        raise ValueError(f"flow size must be positive, got {size_bytes!r}")


def one_to_one(
    coflow_id: int, src: int, dst: int, size_bytes: float, arrival: float = 0.0
) -> Coflow:
    """A single flow (unicast)."""
    _check_disjoint_sizes(size_bytes)
    return Coflow.from_demand(coflow_id, {(src, dst): size_bytes}, arrival)


def broadcast(
    coflow_id: int,
    src: int,
    receivers: Sequence[int],
    size_bytes: float,
    arrival: float = 0.0,
) -> Coflow:
    """One sender replicating ``size_bytes`` to every receiver (one-to-many)."""
    _check_disjoint_sizes(size_bytes)
    if not receivers:
        raise ValueError("broadcast needs at least one receiver")
    if len(set(receivers)) != len(receivers):
        raise ValueError("receivers must be distinct")
    return Coflow.from_demand(
        coflow_id, {(src, dst): size_bytes for dst in receivers}, arrival
    )


def incast(
    coflow_id: int,
    senders: Sequence[int],
    dst: int,
    size_bytes: float,
    arrival: float = 0.0,
) -> Coflow:
    """Every sender pushing ``size_bytes`` to one aggregator (many-to-one)."""
    _check_disjoint_sizes(size_bytes)
    if not senders:
        raise ValueError("incast needs at least one sender")
    if len(set(senders)) != len(senders):
        raise ValueError("senders must be distinct")
    return Coflow.from_demand(
        coflow_id, {(src, dst): size_bytes for src in senders}, arrival
    )


def shuffle(
    coflow_id: int,
    senders: Sequence[int],
    receivers: Sequence[int],
    size_bytes: float,
    arrival: float = 0.0,
) -> Coflow:
    """A full bipartite MapReduce shuffle: every sender sends ``size_bytes``
    to every receiver (many-to-many, ``|C| = |senders| × |receivers|``)."""
    _check_disjoint_sizes(size_bytes)
    if not senders or not receivers:
        raise ValueError("shuffle needs senders and receivers")
    demand = {
        (src, dst): size_bytes for src in senders for dst in receivers
    }
    if len(demand) != len(senders) * len(receivers):
        raise ValueError("senders/receivers must be distinct within each side")
    return Coflow.from_demand(coflow_id, demand, arrival)


def permutation(
    coflow_id: int,
    mapping: Dict[int, int],
    size_bytes: float,
    arrival: float = 0.0,
) -> Coflow:
    """One flow per (src → dst) pair of a one-to-one port mapping.

    Permutation demand needs no port sharing, so Sunflow schedules it at
    exactly ``max(p) + δ`` — a useful best-case reference.
    """
    _check_disjoint_sizes(size_bytes)
    if len(set(mapping.values())) != len(mapping):
        raise ValueError("mapping must be a permutation (distinct destinations)")
    return Coflow.from_demand(
        coflow_id, {(src, dst): size_bytes for src, dst in mapping.items()}, arrival
    )


def hotspot(
    coflow_id: int,
    senders: Sequence[int],
    receivers: Sequence[int],
    base_bytes: float,
    hot_dst: Optional[int] = None,
    hot_factor: float = 10.0,
    arrival: float = 0.0,
) -> Coflow:
    """A shuffle with one oversubscribed receiver (skewed reducer).

    ``hot_dst`` (default: the first receiver) receives ``hot_factor ×
    base_bytes`` from every sender — the skew case where preemptive
    schedulers like Solstice slightly benefit at tiny δ (paper §5.3.1).
    """
    _check_disjoint_sizes(base_bytes)
    if hot_factor <= 0:
        raise ValueError(f"hot factor must be positive, got {hot_factor!r}")
    target = receivers[0] if hot_dst is None else hot_dst
    if target not in receivers:
        raise ValueError(f"hot destination {target} not among receivers")
    demand = {}
    for src in senders:
        for dst in receivers:
            size = base_bytes * (hot_factor if dst == target else 1.0)
            demand[(src, dst)] = size
    return Coflow.from_demand(coflow_id, demand, arrival)
