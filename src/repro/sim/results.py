"""Simulation result containers and CCT statistics.

Every simulator in this package reports one :class:`CoflowRecord` per
Coflow — arrival, completion, switching counts, and the two theoretical
lower bounds computed at the Coflow's own ``B`` and ``δ`` — collected into
a :class:`SimulationReport` with the aggregate statistics the paper's
figures use (averages, percentiles, CDFs, per-category splits).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.coflow import Coflow, CoflowCategory


@dataclass
class CoflowRecord:
    """Outcome of one Coflow in one simulation run."""

    coflow_id: int
    arrival_time: float
    completion_time: float
    num_flows: int
    total_bytes: float
    category: CoflowCategory
    circuit_lower: float
    packet_lower: float
    switching_count: int = 0
    average_processing_time: float = 0.0

    @property
    def cct(self) -> float:
        """Coflow Completion Time: ``max finish − arrival`` (paper §2.3)."""
        return self.completion_time - self.arrival_time

    @property
    def cct_over_circuit_lower(self) -> float:
        """``CCT / T^c_L`` (Figures 3–4); inf when the bound is zero."""
        return self.cct / self.circuit_lower if self.circuit_lower > 0 else math.inf

    @property
    def cct_over_packet_lower(self) -> float:
        """``CCT / T^p_L`` (Figures 4, 7)."""
        return self.cct / self.packet_lower if self.packet_lower > 0 else math.inf

    @property
    def normalized_switching(self) -> float:
        """Switching count over the minimum (``|C|``, Figure 5)."""
        return self.switching_count / self.num_flows if self.num_flows else 0.0


@dataclass
class SimulationReport:
    """All Coflow outcomes for one (scheduler, trace, B, δ) run."""

    scheduler: str
    bandwidth_bps: float
    delta: float
    records: List[CoflowRecord] = field(default_factory=list)

    def add(self, record: CoflowRecord) -> None:
        self.records.append(record)

    def by_id(self) -> Dict[int, CoflowRecord]:
        return {record.coflow_id: record for record in self.records}

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def ccts(self) -> List[float]:
        return [record.cct for record in self.records]

    def average_cct(self) -> float:
        ccts = self.ccts()
        return sum(ccts) / len(ccts) if ccts else 0.0

    def metric(
        self,
        fn: Callable[[CoflowRecord], float],
        where: Optional[Callable[[CoflowRecord], bool]] = None,
    ) -> List[float]:
        """Collect ``fn(record)`` over records passing the ``where`` filter."""
        selected = self.records if where is None else [r for r in self.records if where(r)]
        return [fn(record) for record in selected]

    def filtered(self, where: Callable[[CoflowRecord], bool]) -> "SimulationReport":
        """A sub-report containing only records passing the filter."""
        report = SimulationReport(self.scheduler, self.bandwidth_bps, self.delta)
        report.records = [record for record in self.records if where(record)]
        return report


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0–100) with linear interpolation.

    Matches numpy's default ("linear") method; implemented locally so
    result containers stay dependency-light.
    """
    if not 0 <= q <= 100:
        raise ValueError(f"percentile must be in [0, 100], got {q!r}")
    if not values:
        raise ValueError("percentile of empty sequence")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def summarize(values: Sequence[float]) -> Dict[str, float]:
    """Mean / median / p95 / max — the summary the paper quotes repeatedly."""
    return {
        "mean": mean(values),
        "median": percentile(values, 50),
        "p95": percentile(values, 95),
        "max": max(values),
    }


def make_record(
    coflow: Coflow,
    completion_time: float,
    bandwidth_bps: float,
    delta: float,
    switching_count: int = 0,
) -> CoflowRecord:
    """Build a :class:`CoflowRecord`, computing bounds from the Coflow."""
    from repro.core.bounds import circuit_lower_bound, packet_lower_bound

    return CoflowRecord(
        coflow_id=coflow.coflow_id,
        arrival_time=coflow.arrival_time,
        completion_time=completion_time,
        num_flows=coflow.num_flows,
        total_bytes=coflow.total_bytes,
        category=coflow.category,
        circuit_lower=circuit_lower_bound(coflow, bandwidth_bps, delta),
        packet_lower=packet_lower_bound(coflow, bandwidth_bps),
        switching_count=switching_count,
        average_processing_time=coflow.average_processing_time(bandwidth_bps),
    )
