"""K-core trace replay: Sunflow inter/intra simulation over parallel cores.

The K-core simulators compose the single-core machinery rather than fork
it: :class:`MultiCoreInterSimulator` is a
:class:`~repro.sim.engine.ReplayHost` that owns one
:class:`~repro.sim.circuit_sim.InterCoflowSimulator` *per core* and
drives them all through the one shared :func:`~repro.sim.engine.run_replay`
loop.  A placement policy (``repro.core.multicore.MULTICORE_POLICIES``)
decides, at admission, which core(s) each arriving Coflow lands on:

* ``"ok-approx"`` — the whole Coflow goes to the least-loaded core
  (O(K)-approximation discipline); each core then runs ordinary
  single-core Sunflow inter-Coflow scheduling over its own population.
* ``"balanced-split"`` — the Coflow's demand is split across all cores
  proportionally to core bandwidth (performance-guarantee discipline);
  the Coflow completes when its last share does.

Because the per-core sub-simulators execute the *identical* code path as
a standalone single-switch replay — same planner, same incremental
layered-PRT replanner, same float expressions — a one-core fabric
reproduces today's single-switch results **bitwise** (records and event
times), for both the incremental and full-replan paths.  The
differential suites pin this.

All per-core schedulers share one gap-signature plan cache, namespaced
by core index (``cache_scope``), and one
:class:`~repro.perf.PerfCounters` sink.

Starvation guards are single-switch-only (the guard horizon is defined
against one PRT); guarded multi-core runs are rejected by the facade.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.multicore import (
    CoreLoadTracker,
    MultiCoreSunflowScheduler,
    SwitchCore,
    resolve_multicore_policy,
    split_demand,
)
from repro.core.plan_cache import PlanCache
from repro.core.policies import Policy
from repro.core.sunflow import ReservationOrder
from repro.perf import PerfCounters
from repro.sim.circuit_sim import InterCoflowSimulator
from repro.sim.engine import run_replay
from repro.sim.results import SimulationReport, make_record


@dataclass
class _PendingCoflow:
    """Merge state for one admitted Coflow while its shares are in flight."""

    coflow: Coflow
    cores_left: Set[int]
    assigned_core: Optional[int]  # ok-approx only, for load release
    completion_time: float = 0.0
    switching_count: int = 0


class MultiCoreInterSimulator:
    """Replay a trace over ``K`` switch cores (paper-§5.4-style, K-core).

    Args:
        trace: the Coflows with their arrival times.
        cores: the fabric (``repro.core.multicore.SwitchCore`` sequence,
            ordered by index).
        multicore_policy: coflow-to-core placement policy name; defaults
            to ``"ok-approx"``.  ``"first-fit"`` is intra-only and
            rejected here.
        policy: inter-Coflow priority policy applied *within* each core
            (shortest-Coflow-first by default, shared across cores).
        order / priority_classes / rng / incremental / perf: as in
            :class:`~repro.sim.circuit_sim.InterCoflowSimulator`; all
            per-core sub-simulators share ``rng`` and ``perf``.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        cores: Sequence[SwitchCore],
        multicore_policy: Optional[str] = None,
        policy: Optional[Policy] = None,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        priority_classes: Optional[Dict[int, int]] = None,
        rng: Optional[random.Random] = None,
        incremental: bool = True,
        perf: Optional[PerfCounters] = None,
    ) -> None:
        if not cores:
            raise ValueError("at least one switch core is required")
        self.trace = trace.sorted_by_arrival()
        self.cores = tuple(cores)
        self.multicore_policy = resolve_multicore_policy(multicore_policy, "inter")
        self.bandwidth_bps = self.cores[0].bandwidth_bps
        self.delta = self.cores[0].delta
        self.perf = perf if perf is not None else PerfCounters()
        self.plan_cache = PlanCache()
        empty = CoflowTrace(trace.num_ports, [])
        self._subs: List[InterCoflowSimulator] = [
            InterCoflowSimulator(
                empty,
                bandwidth_bps=core.bandwidth_bps,
                delta=core.delta,
                policy=policy,
                order=order,
                priority_classes=priority_classes,
                rng=rng,
                incremental=incremental,
                perf=self.perf,
                plan_cache=self.plan_cache,
                cache_scope=core.index,
            )
            for core in self.cores
        ]

    @property
    def num_cores(self) -> int:
        return len(self.cores)

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Replay the whole trace; one merged record per Coflow."""
        self._report = SimulationReport("sunflow", self.bandwidth_bps, self.delta)
        for sub in self._subs:
            sub.begin_run()
        self._drained = [0] * self.num_cores
        self._pending: Dict[int, _PendingCoflow] = {}
        self._loads = CoreLoadTracker(self.cores)
        cache_baseline = dict(self.plan_cache.counters)

        self.event_times = run_replay(self, list(self.trace))

        # Fold the run's shared-cache counter deltas exactly once (the
        # sub-simulators' ``finish_run`` would each fold the whole shared
        # delta again, so the host owns this step).
        for name, value in self.plan_cache.counters.items():
            self.perf.inc(name, value - cache_baseline.get(name, 0))
        return self._report

    # ------------------------------------------------------------------
    # ReplayHost hooks (driven by repro.sim.engine.run_replay)
    # ------------------------------------------------------------------
    def has_active(self) -> bool:
        return any(sub.has_active() for sub in self._subs)

    def admit(self, coflow: Coflow, now: float) -> None:
        shares = self._place(coflow)
        assigned = shares[0][0] if self.multicore_policy.name == "ok-approx" else None
        self._pending[coflow.coflow_id] = _PendingCoflow(
            coflow=coflow,
            cores_left={core for core, _ in shares},
            assigned_core=assigned,
        )
        for core, share in shares:
            self._subs[core].admit(share, now)

    def plan(self, now: float, next_arrival: float) -> float:
        event_time = next_arrival
        for sub in self._subs:
            # A core with no active Coflows has nothing to replan (and
            # its completion queue is empty) — skip it entirely.
            if sub.has_active():
                event_time = min(event_time, sub.plan(now, next_arrival))
        return event_time

    def advance(self, now: float, event_time: float) -> None:
        for sub in self._subs:
            if sub.has_active():
                sub.advance(now, event_time)
        self._merge_completions()

    # ------------------------------------------------------------------
    def _place(self, coflow: Coflow) -> List[Tuple[int, Coflow]]:
        """``(core, share)`` pairs for one arriving Coflow.

        A share is the *original* Coflow object whenever it is whole —
        always for ok-approx, and for balanced-split at ``K = 1`` — so
        the one-core path hands the sub-simulator byte-identical inputs.
        """
        if self.multicore_policy.name == "ok-approx":
            demand = coflow.demand()
            core = self._loads.assign(demand)
            self._loads.add(core, demand)
            return [(core, coflow)]
        if self.num_cores == 1:
            return [(0, coflow)]
        shares: List[Tuple[int, Coflow]] = []
        for core, share in enumerate(split_demand(coflow.demand(), self.cores)):
            positive = {circuit: size for circuit, size in share.items() if size > 0}
            if positive:
                shares.append(
                    (
                        core,
                        Coflow.from_demand(
                            coflow.coflow_id,
                            positive,
                            arrival_time=coflow.arrival_time,
                        ),
                    )
                )
        return shares

    def _merge_completions(self) -> None:
        """Drain newly finished per-core records; emit merged records.

        A Coflow's merged completion is the max over its shares, its
        switching count the sum.  Merged records are rebuilt from the
        original (unsplit) Coflow at core 0's rate so bounds stay
        comparable across policies.
        """
        for core, sub in enumerate(self._subs):
            records = sub._report.records
            start = self._drained[core]
            if start == len(records):
                continue
            self._drained[core] = len(records)
            for record in records[start:]:
                pending = self._pending[record.coflow_id]
                pending.cores_left.discard(core)
                pending.switching_count += record.switching_count
                if record.completion_time > pending.completion_time:
                    pending.completion_time = record.completion_time
                if pending.cores_left:
                    continue
                del self._pending[record.coflow_id]
                if pending.assigned_core is not None:
                    self._loads.remove(
                        pending.assigned_core, pending.coflow.demand()
                    )
                self._report.add(
                    make_record(
                        pending.coflow,
                        completion_time=pending.completion_time,
                        bandwidth_bps=self.bandwidth_bps,
                        delta=self.delta,
                        switching_count=pending.switching_count,
                    )
                )


# ----------------------------------------------------------------------
# One-call entry points (mirroring circuit_sim's simulate_* surface)
# ----------------------------------------------------------------------
def simulate_inter_multicore(
    trace: CoflowTrace,
    cores: Sequence[SwitchCore],
    multicore_policy: Optional[str] = None,
    policy: Optional[Policy] = None,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    priority_classes: Optional[Dict[int, int]] = None,
    rng: Optional[random.Random] = None,
    incremental: bool = True,
) -> SimulationReport:
    """One-call K-core trace replay under Sunflow inter-Coflow scheduling."""
    simulator = MultiCoreInterSimulator(
        trace,
        cores,
        multicore_policy=multicore_policy,
        policy=policy,
        order=order,
        priority_classes=priority_classes,
        rng=rng,
        incremental=incremental,
    )
    return simulator.run()


def simulate_intra_multicore(
    trace: CoflowTrace,
    cores: Sequence[SwitchCore],
    multicore_policy: Optional[str] = None,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    rng: Optional[random.Random] = None,
) -> SimulationReport:
    """Back-to-back K-core Sunflow service (paper-§5.3-style, K cores).

    Each Coflow is planned in isolation on fresh per-core tables; its CCT
    is the schedule makespan.  The default placement is ``"first-fit"``
    (flow-level spreading), which degenerates to plain single-core
    Sunflow at ``K = 1`` bitwise.
    """
    if not cores:
        raise ValueError("at least one switch core is required")
    mc_policy = resolve_multicore_policy(multicore_policy, "intra")
    scheduler = MultiCoreSunflowScheduler(cores, order=order, rng=rng)
    base_bandwidth = cores[0].bandwidth_bps
    base_delta = cores[0].delta
    report = SimulationReport("sunflow", base_bandwidth, base_delta)
    for coflow in trace:
        schedule = scheduler.schedule_coflow(
            coflow, policy=mc_policy.name, start_time=0.0
        )
        report.add(
            make_record(
                coflow,
                completion_time=coflow.arrival_time + schedule.makespan,
                bandwidth_bps=base_bandwidth,
                delta=base_delta,
                switching_count=schedule.num_setups,
            )
        )
    return report


__all__ = [
    "MultiCoreInterSimulator",
    "simulate_inter_multicore",
    "simulate_intra_multicore",
]
