"""Varys: SEBF + MADD rate allocation (Chowdhury et al., SIGCOMM 2014).

Varys is the state-of-the-art clairvoyant packet-switched Coflow scheduler
the paper compares against (§5.2, §5.4):

* **SEBF** (Smallest Effective Bottleneck First) orders Coflows by the
  remaining completion time of their bottleneck port, ``Γ``.
* **MADD** (Minimum Allocation for Desired Duration) gives every flow of a
  scheduled Coflow exactly the rate that finishes it at the Coflow's
  ``Γ`` — all flows of a Coflow finish together, using the least bandwidth
  that achieves the Coflow's best completion time on the leftover
  capacity.
* Residual bandwidth is then **backfilled** opportunistically onto already
  scheduled flows, in priority order.

Rates are recomputed only at Coflow arrivals and completions — when a
subflow finishes early (because of backfill), its bandwidth idles until
the next event, the inefficiency §5.4 observes on large Coflows.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.core.prt import TIME_EPS
from repro.sim.packet_sim import FlowKey, PacketCoflowState, RateAllocator


class VarysAllocator(RateAllocator):
    """SEBF ordering with MADD rates and ordered backfill.

    Args:
        backfill: distribute leftover port bandwidth to scheduled flows
            (Varys' behaviour).  Disable to observe pure MADD — useful for
            the test suite's "flows finish together" invariant.
    """

    name = "varys"
    reallocate_on_flow_completion = False

    def __init__(self, backfill: bool = True) -> None:
        self.backfill = backfill

    @property
    def allocation_passes(self) -> int:
        return 2 if self.backfill else 1

    # -- vectorized twin (used by VectorPacketSimulator) ----------------
    def vector_allocate(self, flows, num_ports: int, bandwidth_bps: float):
        """Array-backed MADD + backfill over a ``FlowArrays`` table."""
        from repro.kernels.allocation import varys_allocate

        return varys_allocate(flows, num_ports, backfill=self.backfill)

    def vector_extra_event_time(self, flows, now: float, bandwidth_bps: float):
        return math.inf  # Varys reallocates only at Coflow arrivals/completions

    def allocate(
        self, states: Sequence[PacketCoflowState], num_ports: int, bandwidth_bps: float
    ) -> Dict[FlowKey, float]:
        capacity_in: Dict[int, float] = {}
        capacity_out: Dict[int, float] = {}

        def cap_in(port: int) -> float:
            return capacity_in.get(port, 1.0)

        def cap_out(port: int) -> float:
            return capacity_out.get(port, 1.0)

        ordered = sorted(
            states, key=lambda s: (s.bottleneck(), s.arrival_time, s.coflow_id)
        )
        rates: Dict[FlowKey, float] = {}
        scheduled: List[PacketCoflowState] = []

        for state in ordered:
            gamma = self._gamma(state, cap_in, cap_out)
            if math.isinf(gamma) or gamma <= 0:
                continue  # blocked: some needed port has no capacity left
            for (src, dst), p in state.remaining.items():
                if p <= TIME_EPS:
                    continue
                rate = p / gamma
                rates[(state.coflow_id, src, dst)] = rate
                capacity_in[src] = cap_in(src) - rate
                capacity_out[dst] = cap_out(dst) - rate
            scheduled.append(state)

        if self.backfill:
            for state in scheduled:
                for (src, dst), p in state.remaining.items():
                    if p <= TIME_EPS:
                        continue
                    extra = min(cap_in(src), cap_out(dst))
                    if extra <= TIME_EPS:
                        continue
                    key = (state.coflow_id, src, dst)
                    rates[key] = rates.get(key, 0.0) + extra
                    capacity_in[src] = cap_in(src) - extra
                    capacity_out[dst] = cap_out(dst) - extra
        return rates

    @staticmethod
    def _gamma(state: PacketCoflowState, cap_in, cap_out) -> float:
        """MADD's ``Γ``: soonest instant all remaining flows can finish
        together given the leftover per-port capacity.

        ``Γ = max over ports of (remaining load on port / available
        capacity)``; infinite when a needed port is exhausted.
        """
        input_load: Dict[int, float] = {}
        output_load: Dict[int, float] = {}
        for (src, dst), p in state.remaining.items():
            if p > TIME_EPS:
                input_load[src] = input_load.get(src, 0.0) + p
                output_load[dst] = output_load.get(dst, 0.0) + p
        if not input_load:
            return 0.0
        gamma = 0.0
        for port, load in input_load.items():
            available = cap_in(port)
            if available <= TIME_EPS:
                return math.inf
            gamma = max(gamma, load / available)
        for port, load in output_load.items():
            available = cap_out(port)
            if available <= TIME_EPS:
                return math.inf
            gamma = max(gamma, load / available)
        return gamma
