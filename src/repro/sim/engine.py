"""Minimal discrete-event engine.

A stable priority queue of timestamped events.  The Coflow simulators in
this package are *reschedule-on-event* simulators (paper §6: "Sunflow
reschedules only upon Coflow arrivals and completions"), so the engine's
job is small but correctness-critical: deterministic ordering of
simultaneous events and protection against time moving backwards.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Generic, List, Optional, Tuple, TypeVar

Payload = TypeVar("Payload")


@dataclass(frozen=True)
class Event(Generic[Payload]):
    """A timestamped event; ``sequence`` preserves insertion order at ties."""

    time: float
    sequence: int
    payload: Payload


class EventQueue(Generic[Payload]):
    """Heap-backed event queue with stable FIFO ordering for equal times."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Payload]] = []
        self._counter = itertools.count()
        self._now = float("-inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (-inf before the first)."""
        return self._now

    def push(self, time: float, payload: Payload) -> None:
        """Schedule an event; it may not precede the last popped event."""
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event[Payload]:
        time, sequence, payload = heapq.heappop(self._heap)
        self._now = time
        return Event(time=time, sequence=sequence, payload=payload)

    def pop_simultaneous(self, tolerance: float = 1e-9) -> List[Event[Payload]]:
        """Pop every event within ``tolerance`` of the earliest one."""
        if not self._heap:
            return []
        first = self.pop()
        batch = [first]
        while self._heap and self._heap[0][0] <= first.time + tolerance:
            batch.append(self.pop())
        return batch
