"""The discrete-event engine every simulator in this package drives.

The Coflow simulators are *reschedule-on-event* simulators (paper §6:
"Sunflow reschedules only upon Coflow arrivals and completions"), and all
of them — circuit replay, flow-level packet, vectorized packet — share
one event-loop skeleton: admit the Coflows arriving at the current
instant, ask the scheduling layer when the next internal event (a
completion, a guard-slice end, an allocator wake-up) falls, step time to
the earlier of that and the next arrival, then bank progress and record
completions.  :func:`run_replay` is that skeleton, written once; each
simulator plugs in as a :class:`ReplayHost` and owns only the
domain-specific hooks.

Two queue flavors support it:

* :class:`EventQueue` — a stable priority queue of timestamped events
  (deterministic FIFO ordering of simultaneous events, protection
  against time moving backwards).
* :class:`IndexedEventQueue` — the same heap discipline with O(1)
  *cancellation*: entries are keyed, rescheduling a key invalidates its
  previous entry lazily (stale heap nodes are dropped when they surface
  at the top).  The circuit simulator uses it to track per-Coflow
  completion predictions across incremental replans — only plans that
  actually changed are re-pushed, so finding the next completion no
  longer rescans every active schedule at every event.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import (
    Callable,
    Generic,
    Hashable,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    TypeVar,
)

from repro.core.prt import TIME_EPS

Payload = TypeVar("Payload")


@dataclass(frozen=True)
class Event(Generic[Payload]):
    """A timestamped event; ``sequence`` preserves insertion order at ties."""

    time: float
    sequence: int
    payload: Payload


class EventQueue(Generic[Payload]):
    """Heap-backed event queue with stable FIFO ordering for equal times."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Payload]] = []
        self._counter = itertools.count()
        self._now = float("-inf")

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    @property
    def now(self) -> float:
        """Time of the most recently popped event (-inf before the first)."""
        return self._now

    def push(self, time: float, payload: Payload) -> None:
        """Schedule an event; it may not precede the last popped event."""
        if time < self._now - 1e-9:
            raise ValueError(
                f"cannot schedule event at {time} before current time {self._now}"
            )
        heapq.heappush(self._heap, (time, next(self._counter), payload))

    def peek_time(self) -> Optional[float]:
        return self._heap[0][0] if self._heap else None

    def pop(self) -> Event[Payload]:
        time, sequence, payload = heapq.heappop(self._heap)
        self._now = time
        return Event(time=time, sequence=sequence, payload=payload)

    def pop_simultaneous(self, tolerance: float = 1e-9) -> List[Event[Payload]]:
        """Pop every event within ``tolerance`` of the earliest one."""
        if not self._heap:
            return []
        first = self.pop()
        batch = [first]
        while self._heap and self._heap[0][0] <= first.time + tolerance:
            batch.append(self.pop())
        return batch


Key = TypeVar("Key", bound=Hashable)


class IndexedEventQueue(Generic[Key]):
    """Keyed event queue with stable tie-break and O(1) cancellation.

    Each key holds at most one live event.  :meth:`schedule` replaces the
    key's previous event in O(1) (the old heap node is merely orphaned);
    :meth:`cancel` likewise.  Stale nodes are discarded lazily when they
    reach the heap top, so every operation stays O(log n) amortized in
    the number of schedules, with no mid-heap deletion.
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Key]] = []
        self._counter = itertools.count()
        self._live: dict = {}

    def __len__(self) -> int:
        return len(self._live)

    def __bool__(self) -> bool:
        return bool(self._live)

    def schedule(self, key: Key, time: float) -> None:
        """(Re)schedule ``key`` at ``time``, cancelling its previous event."""
        sequence = next(self._counter)
        self._live[key] = sequence
        heapq.heappush(self._heap, (time, sequence, key))

    def cancel(self, key: Key) -> None:
        """Drop ``key``'s event if it has one (no-op otherwise)."""
        self._live.pop(key, None)

    def time_of(self, key: Key) -> Optional[float]:
        """Currently scheduled time for ``key`` (linear scan; debug aid)."""
        sequence = self._live.get(key)
        if sequence is None:
            return None
        for time, seq, heap_key in self._heap:
            if seq == sequence and heap_key == key:
                return time
        return None

    def _drop_stale(self) -> None:
        heap = self._heap
        live = self._live
        while heap and live.get(heap[0][2]) != heap[0][1]:
            heapq.heappop(heap)

    def peek(self) -> Optional[Tuple[float, Key]]:
        """Earliest live ``(time, key)`` without removing it."""
        self._drop_stale()
        if not self._heap:
            return None
        time, _, key = self._heap[0]
        return time, key

    def peek_time(self) -> Optional[float]:
        entry = self.peek()
        return entry[0] if entry is not None else None

    def pop(self) -> Tuple[float, Key]:
        """Remove and return the earliest live ``(time, key)``."""
        self._drop_stale()
        time, _, key = heapq.heappop(self._heap)
        del self._live[key]
        return time, key


class ReplayHost(Protocol):
    """What a simulator must provide to be driven by :func:`run_replay`.

    The host owns all domain state (active Coflows, rate/plan tables,
    completion records); the engine owns time, arrival admission, and the
    event loop itself.
    """

    def has_active(self) -> bool:
        """True while any admitted Coflow is still unfinished."""

    def admit(self, coflow, now: float) -> None:
        """Activate one arriving Coflow at instant ``now``."""

    def plan(self, now: float, next_arrival: float) -> float:
        """(Re)schedule at ``now``; return the next event's time.

        The returned instant is the earlier of ``next_arrival`` and the
        host's next internal event (completion, guard-slice end,
        allocator wake-up).  Return ``inf`` only when the host can make
        no progress at all — with no arrivals remaining that is a fatal
        stall and the engine raises.
        """

    def advance(self, now: float, event_time: float) -> None:
        """Bank progress over ``[now, event_time)`` and record completions."""


def run_replay(host: ReplayHost, arrivals: Sequence) -> List[float]:
    """The one trace-replay event loop (shared by every simulator here).

    Drives ``host`` through the whole trace: jump idle gaps to the next
    arrival, admit everything arriving within ``TIME_EPS`` of the current
    instant, let the host plan, step to the chosen event, advance.
    ``arrivals`` must be sorted by ``arrival_time`` (traces are).

    Returns the processed event times (also what each iteration set
    ``now`` to) — the event sequence the differential suites compare.
    This list grows with the trace; million-coflow streaming replays use
    :func:`run_replay_stream` directly, which shares the same loop but
    keeps only a counter.

    Raises:
        RuntimeError: if the host reports no upcoming event while no
            arrivals remain (a packet allocator that starved every active
            Coflow; circuit plans always yield a finite completion).
    """
    event_times: List[float] = []
    run_replay_stream(host, arrivals, on_event=event_times.append)
    return event_times


#: End-of-stream marker for the replay loop's one-event lookahead.  A
#: private sentinel (not ``None``) so a trace could, in principle, carry
#: falsy arrival objects without terminating the stream early.
_END = object()


def run_replay_stream(
    host: ReplayHost,
    arrivals: Iterable,
    on_event: Optional[Callable[[float], None]] = None,
) -> int:
    """The replay loop over an arrival *iterator*: O(active) memory.

    Identical event-for-event to :func:`run_replay` (which delegates
    here): the loop keeps a one-arrival lookahead instead of indexing a
    materialized list, so a streaming trace source — a chunked on-disk
    reader, a generator — feeds the simulation without the full Coflow
    list ever existing in memory.  ``arrivals`` must be sorted by
    ``arrival_time``; the streaming readers in
    :mod:`repro.workloads.stream` validate that as they yield.

    Args:
        host: the simulator being driven.
        arrivals: Coflows sorted by arrival time (any iterable).
        on_event: optional per-event callback receiving each processed
            event time (used by :func:`run_replay` to collect the event
            sequence, and by the streaming benchmark to sample RSS and
            throughput at checkpoints without retaining history).

    Returns:
        The number of events processed.

    Raises:
        RuntimeError: if the host reports no upcoming event while no
            arrivals remain (see :func:`run_replay`).
    """
    stream = iter(arrivals)
    pending = next(stream, _END)
    events = 0
    now = 0.0
    while pending is not _END or host.has_active():
        if not host.has_active():
            now = pending.arrival_time
        while pending is not _END and pending.arrival_time <= now + TIME_EPS:
            host.admit(pending, now)
            pending = next(stream, _END)
        next_arrival = pending.arrival_time if pending is not _END else math.inf
        event_time = host.plan(now, next_arrival)
        if math.isinf(event_time):
            raise RuntimeError(
                "no progress possible: allocator starved all active coflows "
                "and no arrivals remain"
            )
        host.advance(now, event_time)
        events += 1
        if on_event is not None:
            on_event(event_time)
        now = event_time
    return events
