"""Hybrid circuit/packet service (paper §2.1, §6 — REACToR-style).

The paper focuses on the pure circuit switch but notes that hybrid
networks "filter and offload traffic to different parallel networks", and
that a REACToR-style ToR lets "a small-bandwidth packet switched network
help accommodate the little leftover traffic".  This module implements
that extension for the intra-Coflow (one Coflow at a time) setting:

* flows smaller than a size threshold go to a parallel packet network
  running at a configurable fraction of the link rate;
* the remaining (large) flows are scheduled on the OCS by Sunflow;
* the Coflow completes when both halves finish.

For a single Coflow the fluid packet network achieves exactly its packet
lower bound ``T^p_L`` (MADD finishes every flow at the bottleneck), so the
packet half is computed in closed form rather than simulated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.compat import legacy_entry_point
from repro.core.bounds import packet_lower_bound
from repro.core.coflow import Coflow, CoflowTrace
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.sim.results import SimulationReport, make_record
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA, MB


@dataclass(frozen=True)
class HybridConfig:
    """Parameters of the hybrid fabric.

    Attributes:
        size_threshold_bytes: flows strictly smaller than this are carried
            by the packet network (0 disables offload — pure circuit).
        packet_bandwidth_fraction: the packet network's per-port rate as a
            fraction of the optical link rate ``B`` (REACToR pairs a fast
            OCS with a much slower packet switch, e.g. 10 %).
    """

    size_threshold_bytes: float = 10 * MB
    packet_bandwidth_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.size_threshold_bytes < 0:
            raise ValueError("size threshold must be non-negative")
        if not 0 < self.packet_bandwidth_fraction <= 1:
            raise ValueError("packet bandwidth fraction must be in (0, 1]")


def split_coflow(
    coflow: Coflow, config: HybridConfig
) -> Tuple[Optional[Coflow], Optional[Coflow]]:
    """Partition a Coflow into (circuit part, packet part) by flow size."""
    big = {
        (f.src, f.dst): f.size_bytes
        for f in coflow.flows
        if f.size_bytes >= config.size_threshold_bytes
    }
    small = {
        (f.src, f.dst): f.size_bytes
        for f in coflow.flows
        if f.size_bytes < config.size_threshold_bytes
    }
    circuit_part = (
        Coflow.from_demand(coflow.coflow_id, big, coflow.arrival_time) if big else None
    )
    packet_part = (
        Coflow.from_demand(coflow.coflow_id, small, coflow.arrival_time)
        if small
        else None
    )
    return circuit_part, packet_part


def split_trace(
    trace: CoflowTrace, config: HybridConfig
) -> Tuple[CoflowTrace, CoflowTrace]:
    """Partition a whole trace into (circuit trace, packet trace).

    Coflows with no flows on one side are simply absent from that side's
    trace; Coflow ids are preserved so the two halves can be rejoined.
    """
    circuit_coflows, packet_coflows = [], []
    for coflow in trace:
        circuit_part, packet_part = split_coflow(coflow, config)
        if circuit_part is not None:
            circuit_coflows.append(circuit_part)
        if packet_part is not None:
            packet_coflows.append(packet_part)
    return (
        CoflowTrace(trace.num_ports, circuit_coflows),
        CoflowTrace(trace.num_ports, packet_coflows),
    )


@legacy_entry_point
def simulate_intra_hybrid(
    trace: CoflowTrace,
    config: HybridConfig,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
) -> SimulationReport:
    """Back-to-back hybrid service: Sunflow circuits + packet offload.

    Returns one record per Coflow whose CCT is the later of the circuit
    half's Sunflow makespan and the packet half's ``T^p_L`` at the packet
    network's rate.  Switching counts reflect the circuit half only.
    """
    scheduler = SunflowScheduler(delta=delta, order=order)
    packet_rate = config.packet_bandwidth_fraction * bandwidth_bps
    report = SimulationReport("sunflow-hybrid", bandwidth_bps, delta)
    for coflow in trace:
        circuit_part, packet_part = split_coflow(coflow, config)
        circuit_cct = 0.0
        switching = 0
        if circuit_part is not None:
            schedule = scheduler.schedule_coflow(
                circuit_part, bandwidth_bps, start_time=0.0
            )
            circuit_cct = schedule.makespan
            switching = schedule.num_setups
        packet_cct = (
            packet_lower_bound(packet_part, packet_rate)
            if packet_part is not None
            else 0.0
        )
        report.add(
            make_record(
                coflow,
                completion_time=coflow.arrival_time + max(circuit_cct, packet_cct),
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=switching,
            )
        )
    return report


@legacy_entry_point
def simulate_inter_hybrid(
    trace: CoflowTrace,
    config: HybridConfig,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    allocator=None,
) -> SimulationReport:
    """Trace replay on the hybrid fabric: OCS + parallel packet overlay.

    Small flows ride the packet overlay (Varys-scheduled at
    ``packet_bandwidth_fraction × B``); large flows ride the Sunflow-
    scheduled circuit fabric at full rate.  The two substrates run
    independently — REACToR multiplexes them per packet, and the overlay
    is provisioned *in addition to* the optical ports, which is exactly
    the deployment the paper's §6 describes — and a Coflow completes when
    its later half completes.

    Each substrate's scheduler sees only its own half of every Coflow, so
    shortest-first priorities are computed per substrate (the overlay
    cannot know the optical half's backlog and vice versa).

    ``allocator`` selects the overlay's rate allocator (default: a fresh
    :class:`~repro.sim.varys.VarysAllocator`); the replay goes through
    :func:`~repro.sim.packet_sim.simulate_packet`, so the overlay rides
    the ``REPRO_KERNEL``-selected engine (vectorized by default).
    """
    from repro.sim.circuit_sim import simulate_inter_sunflow
    from repro.sim.packet_sim import simulate_packet
    from repro.sim.varys import VarysAllocator

    circuit_trace, packet_trace = split_trace(trace, config)
    circuit_by_id = {}
    if len(circuit_trace):
        circuit_by_id = simulate_inter_sunflow(
            circuit_trace, bandwidth_bps, delta
        ).by_id()
    packet_by_id = {}
    if len(packet_trace):
        packet_rate = config.packet_bandwidth_fraction * bandwidth_bps
        packet_by_id = simulate_packet(
            packet_trace, allocator or VarysAllocator(), packet_rate
        ).by_id()

    report = SimulationReport("sunflow-hybrid", bandwidth_bps, delta)
    for coflow in trace:
        candidates = []
        circuit_record = circuit_by_id.get(coflow.coflow_id)
        if circuit_record is not None:
            candidates.append(circuit_record.completion_time)
        packet_record = packet_by_id.get(coflow.coflow_id)
        if packet_record is not None:
            candidates.append(packet_record.completion_time)
        switching = circuit_record.switching_count if circuit_record else 0
        report.add(
            make_record(
                coflow,
                completion_time=max(candidates),
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=switching,
            )
        )
    return report
