"""Flow-level discrete-event simulators for circuit and packet networks."""

from repro.sim.aalo import AaloAllocator
from repro.sim.assignment_exec import ExecutionResult, SwitchModel, execute_assignments
from repro.sim.circuit_sim import (
    InterCoflowSimulator,
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
)
from repro.sim.engine import Event, EventQueue
from repro.sim.hybrid import (
    HybridConfig,
    simulate_inter_hybrid,
    simulate_intra_hybrid,
    split_coflow,
    split_trace,
)
from repro.sim.multicore_sim import (
    MultiCoreInterSimulator,
    simulate_inter_multicore,
    simulate_intra_multicore,
)
from repro.sim.packet_sim import (
    PacketCoflowState,
    PacketSimulator,
    RateAllocator,
    ReferencePacketSimulator,
    simulate_packet,
)
from repro.sim.packet_vector import VectorPacketSimulator, vector_capable
from repro.sim.results import (
    CoflowRecord,
    SimulationReport,
    make_record,
    mean,
    percentile,
    summarize,
)
from repro.sim.streaming import (
    StreamingReport,
    StreamingResult,
    simulate_inter_sunflow_stream,
)
from repro.sim.varys import VarysAllocator

__all__ = [
    "AaloAllocator",
    "ExecutionResult",
    "SwitchModel",
    "execute_assignments",
    "InterCoflowSimulator",
    "simulate_inter_sunflow",
    "simulate_intra_assignment",
    "simulate_intra_sunflow",
    "MultiCoreInterSimulator",
    "simulate_inter_multicore",
    "simulate_intra_multicore",
    "Event",
    "EventQueue",
    "HybridConfig",
    "simulate_inter_hybrid",
    "simulate_intra_hybrid",
    "split_coflow",
    "split_trace",
    "PacketCoflowState",
    "PacketSimulator",
    "RateAllocator",
    "ReferencePacketSimulator",
    "VectorPacketSimulator",
    "vector_capable",
    "simulate_packet",
    "CoflowRecord",
    "SimulationReport",
    "make_record",
    "mean",
    "percentile",
    "summarize",
    "StreamingReport",
    "StreamingResult",
    "simulate_inter_sunflow_stream",
    "VarysAllocator",
]
