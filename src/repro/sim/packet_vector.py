"""Array-backed fluid packet simulator (numpy twin of PacketSimulator).

Same event loop as :class:`~repro.sim.packet_sim.PacketSimulator` —
admit arrivals, allocate rates, find the next event, drain linearly,
emit completions — but flow state lives in one :class:`FlowArrays`
struct-of-arrays table instead of per-Coflow ``remaining`` dicts, and
every per-event pass dispatches to the vectorized kernels in
:mod:`repro.kernels.allocation`.

The table is maintained *incrementally*: ``advance`` mutates
``remaining``/``alive``/``unfinished``/``sent_seconds`` in place, and
the arrays are rebuilt only when membership changes.  Completed Coflows
are compacted lazily — their segments stay in the table (fully dead, so
every kernel skips them for free) until the next arrival triggers a
rebuild, which drops them.  Between the last arrival and the end of the
run the table therefore holds at most the Coflows that were active at
the last arrival, which bounds its size by the trace's concurrency, not
its length.

The engine is used by :func:`repro.sim.packet_sim.simulate_packet` only
when the numpy backend is active (``REPRO_KERNEL`` unset or ``numpy``)
*and* the allocator is exactly one of the shipped classes — a subclass
that overrides ``allocate`` would silently diverge from the vectorized
twin, so it falls back to the reference engine.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.prt import TIME_EPS
from repro.kernels.allocation import (
    FlowArrays,
    advance,
    check_capacity,
    next_completion,
)
from repro.perf import packet_counters
from repro.sim.aalo import AaloAllocator
from repro.sim.engine import run_replay
from repro.sim.packet_sim import RateAllocator
from repro.sim.results import SimulationReport, make_record
from repro.sim.varys import VarysAllocator
from repro.units import DEFAULT_BANDWIDTH

#: Allocators with a vectorized twin.  Exact types only: subclasses may
#: override ``allocate``/``extra_event_time``, and the vector engine
#: would bypass those overrides.
VECTOR_ALLOCATORS = (VarysAllocator, AaloAllocator)


def vector_capable(allocator: RateAllocator) -> bool:
    """True when ``allocator`` can run on the array-backed engine."""
    return type(allocator) in VECTOR_ALLOCATORS


class _Slot:
    """Per-Coflow metadata the arrays don't carry (static after admit)."""

    __slots__ = ("coflow", "proc", "src", "dst", "cidx")

    def __init__(self, coflow: Coflow, bandwidth_bps: float) -> None:
        self.coflow = coflow
        times = coflow.processing_times(bandwidth_bps)
        n = len(times)
        # Flow order == the processing_times dict order the reference
        # engine iterates; every per-flow kernel pass preserves it.
        self.proc = np.fromiter(times.values(), dtype=np.float64, count=n)
        self.src = np.fromiter((c[0] for c in times), dtype=np.int32, count=n)
        self.dst = np.fromiter((c[1] for c in times), dtype=np.int32, count=n)
        self.cidx: Optional[int] = None  # slot index in the current table


def _build_table(
    slots: List[_Slot], old: Optional[FlowArrays], num_ports: int
) -> FlowArrays:
    """(Re)build the flow table, carrying live state over from ``old``."""
    C = len(slots)
    counts = np.empty(C, dtype=np.int64)
    sent = np.empty(C, dtype=np.float64)
    rem_parts: List[np.ndarray] = []
    src_parts: List[np.ndarray] = []
    dst_parts: List[np.ndarray] = []
    arrival: List[float] = []
    ids: List[int] = []
    for k, slot in enumerate(slots):
        if slot.cidx is not None and old is not None:
            lo = int(old.starts[slot.cidx])
            hi = int(old.starts[slot.cidx + 1])
            rem_parts.append(old.remaining[lo:hi])
            sent[k] = old.sent_seconds[slot.cidx]
        else:
            rem_parts.append(slot.proc)
            sent[k] = 0.0
        src_parts.append(slot.src)
        dst_parts.append(slot.dst)
        counts[k] = slot.src.shape[0]
        arrival.append(slot.coflow.arrival_time)
        ids.append(slot.coflow.coflow_id)
        slot.cidx = k

    starts = np.zeros(C + 1, dtype=np.int64)
    np.cumsum(counts, out=starts[1:])
    if rem_parts:
        remaining = np.concatenate(rem_parts)
        src = np.concatenate(src_parts)
        dst = np.concatenate(dst_parts)
    else:
        remaining = np.empty(0, dtype=np.float64)
        src = np.empty(0, dtype=np.int32)
        dst = np.empty(0, dtype=np.int32)
    coflow_idx = np.repeat(np.arange(C, dtype=np.int32), counts)
    alive = remaining > TIME_EPS
    unfinished = np.bincount(
        coflow_idx[alive], minlength=C
    ).astype(np.int64, copy=False)
    return FlowArrays(
        num_ports=num_ports,
        remaining=remaining,
        rate=np.zeros(remaining.shape[0]),
        src=src,
        dst=dst,
        dst_off=(dst + np.int32(num_ports)),
        coflow_idx=coflow_idx,
        starts=starts,
        alive=alive,
        unfinished=unfinished,
        sent_seconds=sent,
        arrival=arrival,
        coflow_ids=ids,
    )


class VectorPacketSimulator:
    """Trace replay on the fluid packet switch, struct-of-arrays edition.

    Event-for-event identical to the reference ``PacketSimulator`` (the
    differential suite in ``tests/kernels`` holds the two engines to
    bitwise-equal event sequences and CCT records); ``event_times``
    records the processed event sequence for exactly that comparison.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        allocator: RateAllocator,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
    ) -> None:
        self.trace = trace.sorted_by_arrival()
        self.allocator = allocator
        self.bandwidth_bps = bandwidth_bps
        self.event_times: List[float] = []

    def run(self) -> SimulationReport:
        self._report = SimulationReport(
            self.allocator.name, self.bandwidth_bps, delta=0.0
        )
        self._passes = getattr(self.allocator, "allocation_passes", 1)
        self._live = []
        self._table = None
        self._table_stale = False
        run_replay(self, list(self.trace))
        return self._report

    # ------------------------------------------------------------------
    # ReplayHost hooks (driven by repro.sim.engine.run_replay)
    # ------------------------------------------------------------------
    def has_active(self) -> bool:
        return bool(self._live)

    def admit(self, coflow: Coflow, now: float) -> None:
        self._live.append(_Slot(coflow, self.bandwidth_bps))
        self._table_stale = True

    def plan(self, now: float, next_arrival: float) -> float:
        allocator = self.allocator
        bandwidth = self.bandwidth_bps
        num_ports = self.trace.num_ports
        if self._table_stale:
            # Rebuild drops lazily-retained dead segments and appends the
            # new Coflows' flows.
            self._table = _build_table(self._live, self._table, num_ports)
            self._table_stale = False
        table = self._table

        order = allocator.vector_allocate(table, num_ports, bandwidth)
        packet_counters.inc("rate_reallocations")
        packet_counters.inc("allocator_passes", self._passes)
        packet_counters.observe_max(
            "flows_active_peak", int(table.unfinished.sum())
        )
        check_capacity(table, order, num_ports)

        event_time = min(
            next_arrival,
            next_completion(table, now, allocator.reallocate_on_flow_completion),
            allocator.vector_extra_event_time(table, now, bandwidth),
        )
        # numpy scalars leak out of the vector kernels; the engine (and
        # the event_times log the differential suite compares) works in
        # native floats.
        return float(event_time)

    def advance(self, now: float, event_time: float) -> None:
        table = self._table
        advance(table, event_time - now)
        packet_counters.inc("events_processed")

        unfinished = table.unfinished
        live = self._live
        if any(unfinished[slot.cidx] == 0 for slot in live):
            still: List[_Slot] = []
            for slot in live:
                if unfinished[slot.cidx] == 0:
                    self._report.add(
                        make_record(
                            slot.coflow,
                            completion_time=event_time,
                            bandwidth_bps=self.bandwidth_bps,
                            delta=0.0,
                            switching_count=0,
                        )
                    )
                else:
                    still.append(slot)
            self._live = still
        self.event_times.append(event_time)
