"""Fluid packet-switched network simulation (paper §2.1, §5.4).

In the packet switched network the fabric can serve many virtual output
queues simultaneously, subject to per-port bandwidth constraints:
``Σ_i b_ij ≤ B`` and ``Σ_j b_ij ≤ B``.  The simulation is *fluid*: a rate
allocator assigns each flow a fraction of line rate, flows drain linearly,
and rates are recomputed only at scheduling events — Coflow arrivals and
completions (exactly Varys' behaviour, whose residual-bandwidth idling the
paper discusses in §5.4), plus allocator-specific events such as Aalo's
queue-threshold crossings.

Demand bookkeeping uses *processing seconds* (bytes ÷ line rate) and rates
are dimensionless fractions of ``B``, mirroring the circuit-side units so
CCTs are directly comparable.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.compat import legacy_entry_point
from repro.core.coflow import Coflow, CoflowTrace
from repro.core.prt import TIME_EPS
from repro.sim.engine import run_replay
from repro.sim.results import SimulationReport, make_record
from repro.units import DEFAULT_BANDWIDTH

Circuit = Tuple[int, int]
FlowKey = Tuple[int, int, int]  # (coflow_id, src, dst)


@dataclass
class PacketCoflowState:
    """Mutable per-Coflow state visible to rate allocators.

    The simulator drains flows exclusively through :meth:`drain`, which
    keeps an unfinished-flow counter in sync so :attr:`done` is O(1)
    instead of re-scanning every flow on every event.  Code that writes
    ``remaining`` directly (tests building scenarios by hand) must
    construct a fresh state afterwards — the counter is only maintained
    across :meth:`drain` calls.
    """

    coflow: Coflow
    #: Remaining processing seconds per flow.
    remaining: Dict[Circuit, float]
    #: Total processing seconds already served (Aalo's attained service).
    sent_seconds: float = 0.0

    def __post_init__(self) -> None:
        self._unfinished = sum(1 for p in self.remaining.values() if p > TIME_EPS)

    @property
    def coflow_id(self) -> int:
        return self.coflow.coflow_id

    @property
    def arrival_time(self) -> float:
        return self.coflow.arrival_time

    @property
    def unfinished_count(self) -> int:
        """Number of flows still above ``TIME_EPS`` (maintained on drain)."""
        return self._unfinished

    @property
    def done(self) -> bool:
        return self._unfinished == 0

    def drain(self, circuit: Circuit, served: float) -> None:
        """Serve ``served`` processing seconds of one flow.

        Decrements the unfinished counter exactly once, on the drain
        that takes the flow's remaining demand below ``TIME_EPS``.
        """
        p = self.remaining[circuit]
        left = p - served
        self.remaining[circuit] = left
        self.sent_seconds += served
        if p > TIME_EPS and left <= TIME_EPS:
            self._unfinished -= 1

    def unfinished_flows(self) -> List[Circuit]:
        return [circuit for circuit, p in self.remaining.items() if p > TIME_EPS]

    def bottleneck(self) -> float:
        """Remaining ``T^p_L`` in seconds (SEBF's effective bottleneck)."""
        input_load: Dict[int, float] = {}
        output_load: Dict[int, float] = {}
        for (src, dst), p in self.remaining.items():
            if p > TIME_EPS:
                input_load[src] = input_load.get(src, 0.0) + p
                output_load[dst] = output_load.get(dst, 0.0) + p
        loads = list(input_load.values()) + list(output_load.values())
        return max(loads) if loads else 0.0


class RateAllocator(abc.ABC):
    """Assigns each unfinished flow a fraction of line rate."""

    #: Name used in reports.
    name: str = "allocator"
    #: Internal passes per allocate() call (perf accounting only — e.g.
    #: Varys' MADD + backfill counts 2, Aalo's weighted discipline 2).
    allocation_passes: int = 1
    #: Whether the simulator should also recompute rates when an individual
    #: flow (not a whole Coflow) finishes.  Varys does not (freed bandwidth
    #: idles until the next Coflow arrival/completion); Aalo effectively
    #: does, since it reallocates on a fine timer.
    reallocate_on_flow_completion: bool = False

    @abc.abstractmethod
    def allocate(
        self, states: Sequence[PacketCoflowState], num_ports: int, bandwidth_bps: float
    ) -> Dict[FlowKey, float]:
        """Return ``{(coflow_id, src, dst): fraction of B}`` for unfinished flows.

        Implementations must respect ``Σ fractions ≤ 1`` on every input and
        output port.
        """

    def extra_event_time(
        self,
        states: Sequence[PacketCoflowState],
        rates: Dict[FlowKey, float],
        now: float,
        bandwidth_bps: float,
    ) -> float:
        """Next allocator-specific event after ``now`` (inf if none).

        Aalo overrides this with queue-threshold crossing times.
        """
        return math.inf


class PacketSimulator:
    """Trace replay on the fluid packet switch with a pluggable allocator.

    This is the pure-Python reference engine, retained verbatim as the
    behavioural oracle for the array-backed
    :class:`~repro.sim.packet_vector.VectorPacketSimulator` (the
    ``ReferencePortReservationTable`` pattern); the differential suite
    holds the two to bitwise-identical event sequences and CCT records.
    ``event_times`` logs the processed events for that comparison.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        allocator: RateAllocator,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
    ) -> None:
        self.trace = trace.sorted_by_arrival()
        self.allocator = allocator
        self.bandwidth_bps = bandwidth_bps
        self.event_times: List[float] = []

    def run(self) -> SimulationReport:
        self._report = SimulationReport(
            self.allocator.name, self.bandwidth_bps, delta=0.0
        )
        self._passes = getattr(self.allocator, "allocation_passes", 1)
        self._active = {}
        self._states = []
        self._rates = {}
        run_replay(self, list(self.trace))
        return self._report

    # ------------------------------------------------------------------
    # ReplayHost hooks (driven by repro.sim.engine.run_replay)
    # ------------------------------------------------------------------
    def has_active(self) -> bool:
        return bool(self._active)

    def admit(self, coflow: Coflow, now: float) -> None:
        self._active[coflow.coflow_id] = PacketCoflowState(
            coflow=coflow,
            remaining=dict(coflow.processing_times(self.bandwidth_bps)),
        )

    def plan(self, now: float, next_arrival: float) -> float:
        from repro.perf import packet_counters

        states = self._states = list(self._active.values())
        rates = self._rates = self.allocator.allocate(
            states, self.trace.num_ports, self.bandwidth_bps
        )
        packet_counters.inc("rate_reallocations")
        packet_counters.inc("allocator_passes", self._passes)
        packet_counters.observe_max(
            "flows_active_peak",
            sum(state.unfinished_count for state in states),
        )
        self._check_capacity(rates)
        return min(
            next_arrival,
            self._next_completion(states, rates, now),
            self.allocator.extra_event_time(states, rates, now, self.bandwidth_bps),
        )

    def advance(self, now: float, event_time: float) -> None:
        from repro.perf import packet_counters

        self._advance(self._states, self._rates, event_time - now)
        packet_counters.inc("events_processed")
        active = self._active
        finished = [cid for cid, state in active.items() if state.done]
        for cid in finished:
            state = active.pop(cid)
            self._report.add(
                make_record(
                    state.coflow,
                    completion_time=event_time,
                    bandwidth_bps=self.bandwidth_bps,
                    delta=0.0,
                    switching_count=0,
                )
            )
        self.event_times.append(event_time)

    # ------------------------------------------------------------------
    def _check_capacity(self, rates: Dict[FlowKey, float]) -> None:
        input_rate: Dict[int, float] = {}
        output_rate: Dict[int, float] = {}
        for (_, src, dst), fraction in rates.items():
            if fraction < -TIME_EPS:
                raise ValueError(f"negative rate for flow ({src}, {dst})")
            input_rate[src] = input_rate.get(src, 0.0) + fraction
            output_rate[dst] = output_rate.get(dst, 0.0) + fraction
        tolerance = 1e-6
        for port, total in input_rate.items():
            if total > 1.0 + tolerance:
                raise ValueError(f"input port {port} over capacity: {total}")
        for port, total in output_rate.items():
            if total > 1.0 + tolerance:
                raise ValueError(f"output port {port} over capacity: {total}")

    def _next_completion(
        self,
        states: Sequence[PacketCoflowState],
        rates: Dict[FlowKey, float],
        now: float,
    ) -> float:
        """Earliest upcoming Coflow (or, if enabled, flow) completion."""
        earliest = math.inf
        for state in states:
            coflow_finish = 0.0
            for circuit, p in state.remaining.items():
                if p <= TIME_EPS:
                    continue
                rate = rates.get((state.coflow_id,) + circuit, 0.0)
                if rate <= 0:
                    coflow_finish = math.inf
                    if not self.allocator.reallocate_on_flow_completion:
                        break
                    continue
                finish = now + p / rate
                if self.allocator.reallocate_on_flow_completion:
                    earliest = min(earliest, finish)
                coflow_finish = max(coflow_finish, finish)
            if coflow_finish not in (0.0, math.inf):
                earliest = min(earliest, coflow_finish)
        return earliest

    @staticmethod
    def _advance(
        states: Sequence[PacketCoflowState],
        rates: Dict[FlowKey, float],
        duration: float,
    ) -> None:
        if duration <= 0:
            return
        for state in states:
            for circuit in list(state.remaining):
                p = state.remaining[circuit]
                if p <= TIME_EPS:
                    continue
                rate = rates.get((state.coflow_id,) + circuit, 0.0)
                if rate <= 0:
                    continue
                served = min(p, rate * duration)
                state.drain(circuit, served)


#: Explicit alias for the oracle role (mirrors the PRT naming).
ReferencePacketSimulator = PacketSimulator


@legacy_entry_point
def simulate_packet(
    trace: CoflowTrace,
    allocator: RateAllocator,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
) -> SimulationReport:
    """One-call packet-switched trace replay under the given allocator.

    Dispatches on the kernel backend (``REPRO_KERNEL``, same switch as
    the scheduler kernels): with numpy active and a stock Varys/Aalo
    allocator the array-backed
    :class:`~repro.sim.packet_vector.VectorPacketSimulator` runs;
    otherwise — ``REPRO_KERNEL=python``, or a custom/subclassed
    allocator whose overrides the vector twin can't honour — the
    pure-Python reference engine does.  Both produce identical reports.
    """
    from repro.kernels import numpy_enabled

    if numpy_enabled():
        from repro.sim.packet_vector import VectorPacketSimulator, vector_capable

        if vector_capable(allocator):
            return VectorPacketSimulator(trace, allocator, bandwidth_bps).run()
    return PacketSimulator(trace, allocator, bandwidth_bps).run()
