"""Aalo: non-clairvoyant Coflow scheduling with D-CLAS queues
(Chowdhury & Stoica, SIGCOMM 2015).

Aalo knows a Coflow's endpoints but *not* its flow sizes.  It approximates
shortest-first using Discretized Coflow-Aware Least-Attained Service:

* Coflows live in ``K`` priority queues with exponentially spaced
  attained-service thresholds (``Q0 × E^k`` bytes); a Coflow starts in the
  highest-priority queue and is demoted as its sent bytes cross each
  threshold.
* Queues are served by priority (lower attained service wins); within a
  queue, Coflows are served FIFO by arrival.
* Within a Coflow, since sizes are unknown, bandwidth is split evenly
  across unfinished flows — the intra-Coflow inefficiency §5.4 notes:
  small subflows get as much as long ones, delaying the Coflow's longest
  flow and prolonging CCT for big Coflows.

Two inter-queue disciplines are provided: ``strict`` priority (default;
Aalo's behaviour in the regime where high queues drain quickly) and
``weighted`` sharing, where each queue gets a budget slice of every port
before a work-conserving leftover pass.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

from repro.core.prt import TIME_EPS
from repro.sim.packet_sim import FlowKey, PacketCoflowState, RateAllocator
from repro.units import BITS_PER_BYTE, MB


class AaloAllocator(RateAllocator):
    """D-CLAS priority queues with FIFO-within-queue fair-per-flow rates.

    Args:
        initial_threshold_bytes: first queue boundary ``Q0`` (10 MB in the
            Aalo paper).
        multiplier: exponential spacing ``E`` between thresholds (10).
        num_queues: number of discrete queues ``K``.
        discipline: ``"strict"`` — serve queues in priority order;
            ``"weighted"`` — give queue ``k`` a weight ``num_queues - k``
            slice of each port first, then fill leftovers in priority
            order.
    """

    name = "aalo"
    reallocate_on_flow_completion = True

    def __init__(
        self,
        initial_threshold_bytes: float = 10 * MB,
        multiplier: float = 10.0,
        num_queues: int = 10,
        discipline: str = "strict",
    ) -> None:
        if initial_threshold_bytes <= 0 or multiplier <= 1 or num_queues < 1:
            raise ValueError("invalid D-CLAS parameters")
        if discipline not in ("strict", "weighted"):
            raise ValueError(f"unknown discipline {discipline!r}")
        self.initial_threshold_bytes = initial_threshold_bytes
        self.multiplier = multiplier
        self.num_queues = num_queues
        self.discipline = discipline
        self._threshold_cache = (None, None)

    @property
    def allocation_passes(self) -> int:
        return 2 if self.discipline == "weighted" else 1

    # ------------------------------------------------------------------
    # Queue machinery
    # ------------------------------------------------------------------
    def threshold_seconds(self, queue: int, bandwidth_bps: float) -> float:
        """Attained-service boundary of queue ``queue``, in processing seconds."""
        threshold_bytes = self.initial_threshold_bytes * self.multiplier**queue
        return threshold_bytes * BITS_PER_BYTE / bandwidth_bps

    def queue_of(self, state: PacketCoflowState, bandwidth_bps: float) -> int:
        """Queue index by attained service (0 = highest priority)."""
        for queue in range(self.num_queues - 1):
            if state.sent_seconds < self.threshold_seconds(queue, bandwidth_bps):
                return queue
        return self.num_queues - 1

    def _thresholds_array(self, bandwidth_bps: float):
        """Queue boundaries as an ndarray (same scalar math as above)."""
        import numpy as np

        cached_bw, cached = self._threshold_cache
        if cached_bw == bandwidth_bps:
            return cached
        thresholds = np.array(
            [
                self.threshold_seconds(queue, bandwidth_bps)
                for queue in range(self.num_queues - 1)
            ]
        )
        self._threshold_cache = (bandwidth_bps, thresholds)
        return thresholds

    # -- vectorized twin (used by VectorPacketSimulator) ----------------
    def vector_allocate(self, flows, num_ports: int, bandwidth_bps: float):
        """Array-backed D-CLAS water-fill over a ``FlowArrays`` table."""
        from repro.kernels.allocation import aalo_allocate

        return aalo_allocate(
            flows,
            num_ports,
            thresholds=self._thresholds_array(bandwidth_bps),
            num_queues=self.num_queues,
            weighted=self.discipline == "weighted",
        )

    def vector_extra_event_time(self, flows, now: float, bandwidth_bps: float):
        from repro.kernels.allocation import aalo_extra_event_time

        return aalo_extra_event_time(
            flows, now, self._thresholds_array(bandwidth_bps), self.num_queues
        )

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(
        self, states: Sequence[PacketCoflowState], num_ports: int, bandwidth_bps: float
    ) -> Dict[FlowKey, float]:
        capacity_in: Dict[int, float] = {}
        capacity_out: Dict[int, float] = {}

        def cap_in(port: int) -> float:
            return capacity_in.get(port, 1.0)

        def cap_out(port: int) -> float:
            return capacity_out.get(port, 1.0)

        def take(src: int, dst: int, amount: float) -> None:
            capacity_in[src] = cap_in(src) - amount
            capacity_out[dst] = cap_out(dst) - amount

        ordered = sorted(
            states,
            key=lambda s: (
                self.queue_of(s, bandwidth_bps),
                s.arrival_time,
                s.coflow_id,
            ),
        )
        rates: Dict[FlowKey, float] = {}

        if self.discipline == "weighted":
            self._weighted_pass(ordered, bandwidth_bps, rates, cap_in, cap_out, take)

        # Work-conserving pass in priority order (the whole allocation for
        # the strict discipline; the leftover pass for weighted).
        for state in ordered:
            self._serve_coflow(state, rates, cap_in, cap_out, take, budget=None)
        return rates

    def _weighted_pass(
        self, ordered, bandwidth_bps, rates, cap_in, cap_out, take
    ) -> None:
        """Reserve a weight-proportional slice of every port per queue."""
        weights = [float(self.num_queues - k) for k in range(self.num_queues)]
        total_weight = sum(weights)
        for state in ordered:
            queue = self.queue_of(state, bandwidth_bps)
            budget = weights[queue] / total_weight
            self._serve_coflow(state, rates, cap_in, cap_out, take, budget=budget)

    @staticmethod
    def _serve_coflow(
        state: PacketCoflowState,
        rates: Dict[FlowKey, float],
        cap_in,
        cap_out,
        take,
        budget,
    ) -> None:
        """Give the Coflow's unfinished flows an equal split of what its
        ports can offer (sizes unknown ⇒ no MADD-style shaping).

        ``budget`` caps the *per-flow* rate for the weighted first pass;
        None means take everything available.
        """
        flows = state.unfinished_flows()
        if not flows:
            return
        # Equal split of each port's availability among this Coflow's flows
        # contending there: divide what's left by how many of this Coflow's
        # flows still await a share on the port, so all contenders on a
        # port end up with equal rates.
        contenders_in: Dict[int, int] = {}
        contenders_out: Dict[int, int] = {}
        for src, dst in flows:
            contenders_in[src] = contenders_in.get(src, 0) + 1
            contenders_out[dst] = contenders_out.get(dst, 0) + 1
        for src, dst in flows:
            fair = min(
                cap_in(src) / contenders_in[src],
                cap_out(dst) / contenders_out[dst],
            )
            contenders_in[src] -= 1
            contenders_out[dst] -= 1
            if budget is not None:
                fair = min(fair, budget)
            fair = min(fair, cap_in(src), cap_out(dst))
            if fair <= TIME_EPS:
                continue
            key = (state.coflow_id, src, dst)
            rates[key] = rates.get(key, 0.0) + fair
            take(src, dst, fair)

    # ------------------------------------------------------------------
    # Queue-crossing events
    # ------------------------------------------------------------------
    def extra_event_time(
        self,
        states: Sequence[PacketCoflowState],
        rates: Dict[FlowKey, float],
        now: float,
        bandwidth_bps: float,
    ) -> float:
        """Earliest instant a Coflow's attained service crosses a threshold.

        Rates must be recomputed there because the Coflow's priority drops.
        """
        earliest = math.inf
        for state in states:
            total_rate = sum(
                rates.get((state.coflow_id, src, dst), 0.0)
                for (src, dst) in state.unfinished_flows()
            )
            if total_rate <= TIME_EPS:
                continue
            queue = self.queue_of(state, bandwidth_bps)
            if queue >= self.num_queues - 1:
                continue  # already in the lowest-priority queue
            boundary = self.threshold_seconds(queue, bandwidth_bps)
            crossing = now + (boundary - state.sent_seconds) / total_rate
            if crossing > now + TIME_EPS:
                earliest = min(earliest, crossing)
        return earliest
