"""Bounded-memory trace replay: million-coflow runs in O(active) space.

The in-memory pipeline materializes the trace (a Coflow list), the event
sequence, and one :class:`~repro.sim.results.CoflowRecord` per Coflow —
all O(trace).  This module replaces each with a streaming counterpart
while keeping the simulation itself *bit-identical*:

* arrivals come from any iterator (a
  :class:`~repro.workloads.stream.StreamTraceReader`, a generator), fed
  through :func:`repro.sim.engine.run_replay_stream`'s one-arrival
  lookahead;
* completion records fold into a :class:`StreamingReport` — running
  aggregates plus a :class:`~repro.analysis.quantiles.QuantileDigest`
  for CCT percentiles — instead of an unbounded record list;
* the simulator's own history (dead plan layers, PRT journal, view
  cache) is compacted as it goes (see
  :class:`~repro.sim.circuit_sim.InterCoflowSimulator`).

Byte-identity: the event loop performs the same float operations as the
in-memory path, and the simulator is byte-stable under compaction, so
driving the *same* simulator with a full
:class:`~repro.sim.results.SimulationReport` as the ``report`` sink
reproduces the in-memory run exactly — the differential suite in
``tests/sim/test_streaming.py`` pins this.  Only the *aggregation* is
approximate (digest quantiles, within the documented rank error); sums,
counts, extrema, and every individual completion time are exact.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional

from repro.analysis.quantiles import QuantileDigest
from repro.core.coflow import CoflowTrace
from repro.core.policies import Policy
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import ReservationOrder
from repro.perf import PerfCounters, peak_rss_bytes
from repro.sim.circuit_sim import InterCoflowSimulator
from repro.sim.engine import run_replay_stream
from repro.sim.results import CoflowRecord
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA


class StreamingReport:
    """Completion-record sink with O(1) memory per Coflow.

    Drop-in for :class:`~repro.sim.results.SimulationReport` where the
    simulator is concerned (it only calls ``add``); the aggregates the
    paper's figures need — mean/min/max CCT, CCT percentiles, switching
    totals, per-category counts — are folded in as records arrive and
    the records themselves are discarded.  Percentiles come from a
    :class:`~repro.analysis.quantiles.QuantileDigest` (documented rank
    error ≲ 1/compression); everything else is exact.
    """

    def __init__(
        self,
        scheduler: str,
        bandwidth_bps: float,
        delta: float,
        compression: int = 200,
    ) -> None:
        self.scheduler = scheduler
        self.bandwidth_bps = bandwidth_bps
        self.delta = delta
        self.count = 0
        self.cct_sum = 0.0
        self.switching_total = 0
        self.flows_total = 0
        self.bytes_total = 0.0
        self.last_completion = 0.0
        self.category_counts: Dict[str, int] = {}
        self.digest = QuantileDigest(compression=compression)

    def __len__(self) -> int:
        return self.count

    def add(self, record: CoflowRecord) -> None:
        """Fold one completion record into the running aggregates."""
        cct = record.cct
        self.count += 1
        self.cct_sum += cct
        self.switching_total += record.switching_count
        self.flows_total += record.num_flows
        self.bytes_total += record.total_bytes
        if record.completion_time > self.last_completion:
            self.last_completion = record.completion_time
        category = record.category.value
        self.category_counts[category] = self.category_counts.get(category, 0) + 1
        self.digest.add(cct)

    # ------------------------------------------------------------------
    # Aggregates (mirroring SimulationReport's names where they apply)
    # ------------------------------------------------------------------
    def average_cct(self) -> float:
        return self.cct_sum / self.count if self.count else 0.0

    @property
    def min_cct(self) -> float:
        return self.digest.min

    @property
    def max_cct(self) -> float:
        return self.digest.max

    def cct_percentile(self, p: float) -> float:
        """Estimated ``p``-th CCT percentile (digest rank error applies)."""
        return self.digest.percentile(p)

    def summary(self) -> Dict[str, float]:
        """The summary block the streaming bench and CLI print."""
        if self.count == 0:
            return {"count": 0}
        return {
            "count": self.count,
            "mean_cct_s": self.average_cct(),
            "median_cct_s": self.cct_percentile(50),
            "p95_cct_s": self.cct_percentile(95),
            "p99_cct_s": self.cct_percentile(99),
            "min_cct_s": self.min_cct,
            "max_cct_s": self.max_cct,
            "last_completion_s": self.last_completion,
            "switching_total": self.switching_total,
        }


@dataclass
class StreamingResult:
    """What :func:`simulate_inter_sunflow_stream` returns.

    ``report`` is whatever sink the run used — a :class:`StreamingReport`
    by default, or the caller-provided one (the differential suite passes
    a full :class:`~repro.sim.results.SimulationReport` to compare
    records against the in-memory engine).
    """

    report: object
    events: int
    perf: PerfCounters


def simulate_inter_sunflow_stream(
    arrivals: Iterable,
    num_ports: Optional[int] = None,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    policy: Optional[Policy] = None,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    guard: Optional[StarvationGuard] = None,
    priority_classes: Optional[Dict[int, int]] = None,
    rng: Optional[random.Random] = None,
    incremental: bool = True,
    perf: Optional[PerfCounters] = None,
    report=None,
    on_event: Optional[Callable[[float], None]] = None,
    digest_compression: int = 200,
) -> StreamingResult:
    """Replay an arrival stream under Sunflow inter-Coflow scheduling.

    The streaming twin of
    :func:`repro.sim.circuit_sim.simulate_inter_sunflow`: identical
    simulation (same simulator class, same event loop arithmetic), but
    arrivals come from an iterator and completions fold into a bounded
    :class:`StreamingReport` — peak memory tracks the number of
    *concurrently active* Coflows, not the trace length.

    Args:
        arrivals: Coflows sorted by arrival time — an
            :class:`~repro.workloads.stream.ArrivalStream`, any iterable,
            or a generator.  When it is an ``ArrivalStream`` (or exposes
            ``num_ports``), ``num_ports`` may be omitted.
        num_ports: fabric width; required when ``arrivals`` does not
            carry it.
        report: optional completion sink (anything with ``add(record)``).
            Defaults to a fresh :class:`StreamingReport`.
        on_event: optional callback receiving each event time (RSS /
            throughput sampling in the benchmark).
        digest_compression: quantile-sketch compression for the default
            report.

    Returns:
        :class:`StreamingResult` with the report, the number of events
        processed, and the run's perf counters (including
        ``prt_compactions``, ``sketch_merges``, the ``plan.*``
        replan-transaction phase sub-timers, and a ``peak_rss_bytes``
        high-water mark).  The simulator's per-Coflow demand state rides
        the same :class:`~repro.core.demand.PackedDemand` columns as the
        in-memory engine, so the streaming path shares the packed replan
        transaction bit-for-bit.
    """
    if num_ports is None:
        num_ports = getattr(arrivals, "num_ports", None)
        if num_ports is None:
            raise ValueError(
                "num_ports is required when the arrival source does not "
                "carry it (pass an ArrivalStream or set num_ports=...)"
            )
    simulator = InterCoflowSimulator(
        CoflowTrace(num_ports=num_ports),
        bandwidth_bps=bandwidth_bps,
        delta=delta,
        policy=policy,
        order=order,
        guard=guard,
        priority_classes=priority_classes,
        rng=rng,
        incremental=incremental,
        perf=perf,
    )
    if report is None:
        report = StreamingReport(
            "sunflow", bandwidth_bps, delta, compression=digest_compression
        )
    simulator.begin_run(report=report)
    events = run_replay_stream(simulator, arrivals, on_event=on_event)
    simulator.finish_run()
    run_perf = simulator.perf
    if isinstance(report, StreamingReport):
        run_perf.inc("sketch_merges", report.digest.compressions)
    peak = peak_rss_bytes()
    if peak is not None:
        run_perf.observe_max("peak_rss_bytes", peak)
    return StreamingResult(report=report, events=events, perf=run_perf)


__all__ = [
    "StreamingReport",
    "StreamingResult",
    "simulate_inter_sunflow_stream",
]
