"""Executor for assignment-based circuit schedules (paper §2.1, §3.1.1).

Takes the ``{A_1 … A_m}`` sequence a baseline scheduler (Edmond/TMS/
Solstice) emitted and plays it against a demand matrix on a switch with
reconfiguration delay ``δ``, under either switch model:

* **all-stop** — during any reconfiguration, *every* circuit is dark for
  ``δ`` (the classic TSA assumption);
* **not-all-stop** — only circuits being set up or torn down are dark;
  circuits present in consecutive assignments keep transmitting through
  the reconfiguration (the accurate model for 3D-MEMS switches, and the
  model under which the paper evaluates Solstice — see Figure 1b where
  ``[in.5, out.6]`` stays active across ``A_7``/``A_8``).

The executor reports the completion time of the *real* demand (dummy
demand added by stuffing occupies circuits but never counts as service),
per-flow finish times, and the number of circuit establishments — the
switching count Figure 5 compares against the ``|C|`` minimum.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Set, Union

import numpy as np

from repro.core.prt import TIME_EPS
from repro.schedulers.base import AssignmentSchedule, Circuit


class SwitchModel(enum.Enum):
    """Which circuits stop during a reconfiguration (paper §2.1)."""

    ALL_STOP = "all-stop"
    NOT_ALL_STOP = "not-all-stop"


@dataclass
class ExecutionResult:
    """Outcome of executing one assignment schedule on one demand matrix."""

    #: When the last byte of real demand finished (relative to start = 0).
    completion_time: float
    #: Per-circuit finish time of real demand.
    finish_times: Dict[Circuit, float] = field(default_factory=dict)
    #: Total circuit establishments, including each assignment's new circuits.
    switching_count: int = 0
    #: Number of assignments actually played before demand drained.
    assignments_used: int = 0

    @property
    def finished(self) -> bool:
        return self.completion_time != float("inf")


def execute_assignments(
    schedule: AssignmentSchedule,
    demand_times: Union[Mapping[Circuit, float], np.ndarray],
    delta: float,
    model: SwitchModel = SwitchModel.NOT_ALL_STOP,
) -> ExecutionResult:
    """Play a schedule and measure when the real demand drains.

    Args:
        schedule: the planned assignments, in order.
        demand_times: real demand in processing seconds per circuit —
            either a sparse ``{(src, dst): seconds}`` mapping or a dense
            ``N × N`` ndarray (the scheduler pipeline's canonical demand
            representation), where ``demand[src, dst]`` is seconds.
            Entries absent from the schedule's service are never served.
        delta: reconfiguration delay ``δ`` in seconds.
        model: all-stop or not-all-stop accounting.

    Returns:
        :class:`ExecutionResult`; ``completion_time`` is ``inf`` when the
        schedule does not cover the demand (callers treat that as a
        scheduler bug — every scheduler here emits covering schedules).
    """
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta!r}")
    if isinstance(demand_times, np.ndarray):
        if demand_times.ndim != 2:
            raise ValueError("ndarray demand must be two-dimensional")
        demand_times = {
            (int(i), int(j)): float(seconds)
            for (i, j), seconds in np.ndenumerate(demand_times)
            if seconds > 0
        }
    remaining: Dict[Circuit, float] = {
        circuit: seconds for circuit, seconds in demand_times.items() if seconds > TIME_EPS
    }
    result = ExecutionResult(completion_time=float("inf"))
    if not remaining:
        result.completion_time = 0.0
        return result

    outstanding = len(remaining)
    now = 0.0
    previous: Set[Circuit] = set()

    def serve(circuit: Circuit, start: float, end: float) -> None:
        """Serve real demand on ``circuit`` during ``[start, end)``."""
        nonlocal outstanding
        seconds = remaining.get(circuit)
        if seconds is None or end <= start:
            return
        window = end - start
        if seconds <= window + TIME_EPS:
            finish = start + seconds
            result.finish_times[circuit] = finish
            del remaining[circuit]
            outstanding -= 1
        else:
            remaining[circuit] = seconds - window

    for assignment in schedule.assignments:
        current = set(assignment.circuits)
        new_circuits = current - previous
        result.assignments_used += 1
        result.switching_count += len(new_circuits)

        if new_circuits:
            reconfig_end = now + delta
            if model is SwitchModel.NOT_ALL_STOP:
                # Persistent circuits keep transmitting through the
                # reconfiguration of the others.
                for circuit in current & previous:
                    serve(circuit, now, reconfig_end)
            transmit_start = reconfig_end
        else:
            transmit_start = now
        transmit_end = transmit_start + assignment.duration
        for circuit in current:
            serve(circuit, transmit_start, transmit_end)
        now = transmit_end
        previous = current
        if outstanding == 0:
            break

    if outstanding == 0:
        result.completion_time = max(result.finish_times.values())
    return result
