"""Circuit-switched network simulation (paper §5.1).

Flow-level, trace-driven simulation of the optical circuit switched
network under the not-all-stop model, in the paper's two evaluation modes:

* **intra-Coflow** (§5.3) — Coflows are served back-to-back ("a Coflow
  arrives only after the previous one is finished"), so each Coflow is
  scheduled in isolation and its CCT is simply the schedule makespan.
  Works for Sunflow and for the assignment-based baselines.
* **inter-Coflow** (§5.4) — detailed trace replay with arrival times.
  Like Varys, the simulator reschedules *only* at Coflow arrivals and
  completions: at each event the remaining demand of every active Coflow
  is re-planned through ``InterCoflow`` (priority order given by a
  :class:`~repro.core.policies.Policy`), the plan is executed until the
  next event, and transfer progress is banked.  Circuits actively
  transmitting at a reschedule keep their configuration (no second ``δ``)
  when the new plan reuses them immediately; circuits caught mid-setup
  carry only their *remaining* setup time into the new plan.

An optional :class:`~repro.core.starvation.StarvationGuard` carves the
``(T+τ)`` shared slices of §4.2 into the plan; during a ``τ`` slice every
active Coflow with demand on an enabled circuit shares its bandwidth
equally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.policies import CoflowView, Policy, ShortestFirst
from repro.core.prt import PortReservationTable, TIME_EPS
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import ReservationOrder, SunflowScheduler
from repro.schedulers.base import AssignmentScheduler
from repro.sim.assignment_exec import SwitchModel, execute_assignments
from repro.sim.results import SimulationReport, make_record
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA

Circuit = Tuple[int, int]


# ----------------------------------------------------------------------
# Intra-Coflow mode (§5.3): one Coflow in the network at a time
# ----------------------------------------------------------------------
def simulate_intra_sunflow(
    trace: CoflowTrace,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    rng: Optional[random.Random] = None,
) -> SimulationReport:
    """Back-to-back Sunflow service: CCT per Coflow is its schedule makespan."""
    scheduler = SunflowScheduler(delta=delta, order=order, rng=rng)
    report = SimulationReport("sunflow", bandwidth_bps, delta)
    for coflow in trace:
        schedule = scheduler.schedule_coflow(coflow, bandwidth_bps, start_time=0.0)
        report.add(
            make_record(
                coflow,
                completion_time=coflow.arrival_time + schedule.makespan,
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=schedule.num_setups,
            )
        )
    return report


def simulate_intra_assignment(
    trace: CoflowTrace,
    scheduler: AssignmentScheduler,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    model: SwitchModel = SwitchModel.NOT_ALL_STOP,
) -> SimulationReport:
    """Back-to-back service by an assignment-based baseline (Solstice/TMS/Edmond)."""
    report = SimulationReport(scheduler.name, bandwidth_bps, delta)
    for coflow in trace:
        demand = coflow.processing_times(bandwidth_bps)
        schedule = scheduler.schedule(demand, trace.num_ports)
        execution = execute_assignments(schedule, demand, delta, model=model)
        if not execution.finished:
            raise RuntimeError(
                f"{scheduler.name} schedule does not cover coflow {coflow.coflow_id}"
            )
        report.add(
            make_record(
                coflow,
                completion_time=execution.completion_time + coflow.arrival_time,
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=execution.switching_count,
            )
        )
    return report


# ----------------------------------------------------------------------
# Inter-Coflow mode (§5.4): trace replay with arrivals
# ----------------------------------------------------------------------
@dataclass
class _ActiveCoflow:
    """Simulator-side mutable state of one admitted, unfinished Coflow."""

    coflow: Coflow
    remaining: Dict[Circuit, float]
    #: Circuits configured (value = remaining setup seconds; 0 = live).
    established: Dict[Circuit, float] = field(default_factory=dict)
    switching_count: int = 0

    @property
    def done(self) -> bool:
        return all(p <= TIME_EPS for p in self.remaining.values())


class InterCoflowSimulator:
    """Event-driven replay of a trace under Sunflow inter-Coflow scheduling.

    Args:
        trace: the Coflows with their arrival times.
        bandwidth_bps: link rate ``B``.
        delta: reconfiguration delay ``δ``.
        policy: inter-Coflow priority policy (shortest-Coflow-first by
            default, as in the paper's evaluation).
        order: intra-Coflow reservation consideration order.
        guard: optional starvation guard; its ``τ`` slices are reserved in
            every plan and serve all Coflows on the enabled circuits.
        priority_classes: operator-assigned classes per Coflow id (lower is
            more important); defaults to a single class.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        delta: float = DEFAULT_DELTA,
        policy: Optional[Policy] = None,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        guard: Optional[StarvationGuard] = None,
        priority_classes: Optional[Dict[int, int]] = None,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.trace = trace.sorted_by_arrival()
        self.bandwidth_bps = bandwidth_bps
        self.delta = delta
        self.policy = policy if policy is not None else ShortestFirst()
        self.guard = guard
        self.priority_classes = priority_classes or {}
        self.scheduler = SunflowScheduler(delta=delta, order=order, rng=rng)

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Replay the whole trace; returns one record per Coflow."""
        report = SimulationReport("sunflow", self.bandwidth_bps, self.delta)
        arrivals = list(self.trace)
        next_arrival_index = 0
        active: Dict[int, _ActiveCoflow] = {}
        now = 0.0

        while active or next_arrival_index < len(arrivals):
            if not active:
                now = arrivals[next_arrival_index].arrival_time
            # Admit every Coflow arriving at the current instant.
            while (
                next_arrival_index < len(arrivals)
                and arrivals[next_arrival_index].arrival_time <= now + TIME_EPS
            ):
                coflow = arrivals[next_arrival_index]
                active[coflow.coflow_id] = _ActiveCoflow(
                    coflow=coflow,
                    remaining=dict(coflow.processing_times(self.bandwidth_bps)),
                )
                next_arrival_index += 1

            schedules = self._replan(active, now)
            next_arrival = (
                arrivals[next_arrival_index].arrival_time
                if next_arrival_index < len(arrivals)
                else float("inf")
            )
            next_completion = min(s.completion_time for s in schedules.values())
            event_time = min(next_arrival, next_completion)
            if self.guard is not None:
                # Wake at the next guard-slice end inside the horizon so
                # Coflows drained by shared guard service complete promptly.
                for window in self.guard.windows_between(now, event_time):
                    if window.end > now + TIME_EPS:
                        event_time = min(event_time, window.end)
                        break

            self._advance(active, schedules, now, event_time)
            self._record_completions(active, report, event_time)
            now = event_time
        return report

    # ------------------------------------------------------------------
    def _replan(self, active: Dict[int, _ActiveCoflow], now: float):
        """Re-run InterCoflow over the remaining demand of active Coflows."""
        views = [
            CoflowView(
                coflow_id=cid,
                arrival_time=state.coflow.arrival_time,
                remaining_times=state.remaining,
                priority_class=self.priority_classes.get(cid, 0),
            )
            for cid, state in active.items()
        ]
        ordered = self.policy.order(views)
        demands = [(view.coflow_id, active[view.coflow_id].remaining) for view in ordered]
        established = {cid: state.established for cid, state in active.items()}

        horizon = self._guard_horizon(active, now)
        while True:
            prt = PortReservationTable()
            if self.guard is not None:
                self.guard.reserve_windows(prt, now, horizon)
            prt, schedules = self.scheduler.schedule_many(
                demands, start_time=now, prt=prt, established=established
            )
            if self.guard is None:
                return schedules
            latest = max(s.completion_time for s in schedules.values())
            if latest <= horizon - self.guard.cycle:
                return schedules
            # Plan ran past the reserved guard region; extend and retry so
            # no plan escapes the guard's periodic blackouts.
            horizon = latest + 2 * self.guard.max_service_gap

    def _guard_horizon(self, active: Dict[int, _ActiveCoflow], now: float) -> float:
        if self.guard is None:
            return now
        serial = sum(
            sum(state.remaining.values()) + len(state.remaining) * self.delta
            for state in active.values()
        )
        inflation = self.guard.cycle / self.guard.period
        return now + serial * (1.0 + inflation) + 2 * self.guard.max_service_gap

    # ------------------------------------------------------------------
    def _advance(
        self,
        active: Dict[int, _ActiveCoflow],
        schedules,
        start: float,
        end: float,
    ) -> None:
        """Bank transfer progress from the plan over ``[start, end)``."""
        for cid, schedule in schedules.items():
            state = active[cid]
            established: Dict[Circuit, float] = {}
            for reservation in schedule.reservations:
                if reservation.start >= end - TIME_EPS:
                    continue
                served = reservation.transmitted_before(end)
                circuit = reservation.circuit
                if served > 0:
                    left = state.remaining.get(circuit, 0.0) - served
                    state.remaining[circuit] = max(0.0, left)
                # A reconfiguration that began before the event counts as a
                # switching event even if the plan is later discarded.
                if reservation.setup > 0:
                    state.switching_count += 1
                if end < reservation.end - TIME_EPS:
                    # Circuit is up (or mid-setup) at the event instant; a
                    # replan reusing it immediately pays only the remaining
                    # setup time.
                    established[circuit] = max(0.0, reservation.transmit_start - end)
            state.established = established
        if self.guard is not None:
            self._apply_guard_service(active, start, end)

    def _apply_guard_service(
        self, active: Dict[int, _ActiveCoflow], start: float, end: float
    ) -> None:
        """Fluid shared service during the guard's ``τ`` slices in [start, end)."""
        assert self.guard is not None
        for window in self.guard.windows_between(start, end):
            transmit_start = window.start + self.guard.delta
            overlap = min(end, window.end) - max(start, transmit_start)
            if overlap <= TIME_EPS:
                continue
            for src, dst in self.guard.assignments[window.assignment_index]:
                sharers = [
                    state
                    for state in active.values()
                    if state.remaining.get((src, dst), 0.0) > TIME_EPS
                ]
                if not sharers:
                    continue
                share = overlap / len(sharers)
                for state in sharers:
                    left = state.remaining[(src, dst)] - share
                    state.remaining[(src, dst)] = max(0.0, left)

    # ------------------------------------------------------------------
    def _record_completions(
        self, active: Dict[int, _ActiveCoflow], report: SimulationReport, now: float
    ) -> None:
        finished = [cid for cid, state in active.items() if state.done]
        for cid in finished:
            state = active.pop(cid)
            report.add(
                make_record(
                    state.coflow,
                    completion_time=now,
                    bandwidth_bps=self.bandwidth_bps,
                    delta=self.delta,
                    switching_count=state.switching_count,
                )
            )


def simulate_inter_sunflow(
    trace: CoflowTrace,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    policy: Optional[Policy] = None,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    guard: Optional[StarvationGuard] = None,
    priority_classes: Optional[Dict[int, int]] = None,
    rng: Optional[random.Random] = None,
) -> SimulationReport:
    """One-call trace replay under Sunflow inter-Coflow scheduling."""
    simulator = InterCoflowSimulator(
        trace,
        bandwidth_bps=bandwidth_bps,
        delta=delta,
        policy=policy,
        order=order,
        guard=guard,
        priority_classes=priority_classes,
        rng=rng,
    )
    return simulator.run()
