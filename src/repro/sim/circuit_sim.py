"""Circuit-switched network simulation (paper §5.1).

Flow-level, trace-driven simulation of the optical circuit switched
network under the not-all-stop model, in the paper's two evaluation modes:

* **intra-Coflow** (§5.3) — Coflows are served back-to-back ("a Coflow
  arrives only after the previous one is finished"), so each Coflow is
  scheduled in isolation and its CCT is simply the schedule makespan.
  Works for Sunflow and for the assignment-based baselines.
* **inter-Coflow** (§5.4) — detailed trace replay with arrival times.
  Like Varys, the simulator reschedules *only* at Coflow arrivals and
  completions: at each event the remaining demand of every active Coflow
  is re-planned through ``InterCoflow`` (priority order given by a
  :class:`~repro.core.policies.Policy`), the plan is executed until the
  next event, and transfer progress is banked.  Circuits actively
  transmitting at a reschedule keep their configuration (no second ``δ``)
  when the new plan reuses them immediately; circuits caught mid-setup
  carry only their *remaining* setup time into the new plan.

An optional :class:`~repro.core.starvation.StarvationGuard` carves the
``(T+τ)`` shared slices of §4.2 into the plan; during a ``τ`` slice every
active Coflow with demand on an enabled circuit shares its bandwidth
equally.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Set, Tuple

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.demand import PackedDemand
from repro.core.policies import CoflowView, Policy, ShortestFirst
from repro.core.plan_cache import PlanCache
from repro.core import prt as prt_mod
from repro.core.prt import (
    PortConflictError,
    PortReservationTable,
    Reservation,
    TIME_EPS,
)
from repro.core.starvation import StarvationGuard
from repro.core.sunflow import CoflowSchedule, ReservationOrder, SunflowScheduler
from repro.compat import legacy_entry_point
from repro.perf import PerfCounters
from repro.schedulers.base import AssignmentScheduler
from repro.sim.assignment_exec import SwitchModel, execute_assignments
from repro.sim.engine import IndexedEventQueue, run_replay
from repro.sim.results import SimulationReport, make_record
from repro.units import DEFAULT_BANDWIDTH, DEFAULT_DELTA

Circuit = Tuple[int, int]


# ----------------------------------------------------------------------
# Intra-Coflow mode (§5.3): one Coflow in the network at a time
# ----------------------------------------------------------------------
@legacy_entry_point
def simulate_intra_sunflow(
    trace: CoflowTrace,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    rng: Optional[random.Random] = None,
) -> SimulationReport:
    """Back-to-back Sunflow service: CCT per Coflow is its schedule makespan."""
    scheduler = SunflowScheduler(delta=delta, order=order, rng=rng)
    report = SimulationReport("sunflow", bandwidth_bps, delta)
    for coflow in trace:
        schedule = scheduler.schedule_coflow(coflow, bandwidth_bps, start_time=0.0)
        report.add(
            make_record(
                coflow,
                completion_time=coflow.arrival_time + schedule.makespan,
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=schedule.num_setups,
            )
        )
    return report


@legacy_entry_point
def simulate_intra_assignment(
    trace: CoflowTrace,
    scheduler: AssignmentScheduler,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    model: SwitchModel = SwitchModel.NOT_ALL_STOP,
) -> SimulationReport:
    """Back-to-back service by an assignment-based baseline (Solstice/TMS/Edmond)."""
    report = SimulationReport(scheduler.name, bandwidth_bps, delta)
    for coflow in trace:
        demand = coflow.processing_times(bandwidth_bps)
        schedule = scheduler.schedule(demand, trace.num_ports)
        execution = execute_assignments(schedule, demand, delta, model=model)
        if not execution.finished:
            raise RuntimeError(
                f"{scheduler.name} schedule does not cover coflow {coflow.coflow_id}"
            )
        report.add(
            make_record(
                coflow,
                completion_time=execution.completion_time + coflow.arrival_time,
                bandwidth_bps=bandwidth_bps,
                delta=delta,
                switching_count=execution.switching_count,
            )
        )
    return report


# ----------------------------------------------------------------------
# Inter-Coflow mode (§5.4): trace replay with arrivals
# ----------------------------------------------------------------------
@dataclass
class _ActiveCoflow:
    """Simulator-side mutable state of one admitted, unfinished Coflow."""

    coflow: Coflow
    remaining: Dict[Circuit, float]
    #: Circuits configured, as ``circuit -> (remaining setup seconds,
    #: anchor end)``: 0 remaining setup means the circuit is live, and the
    #: anchor is the absolute end its continuation was planned to reach
    #: (lets a replan reproduce the same reservation bit-for-bit).
    established: Dict[Circuit, Tuple[float, float]] = field(default_factory=dict)
    #: Circuits whose ``remaining`` was re-banked since this Coflow's plan
    #: was last truly computed.  A banked value is the planner's per-entry
    #: subtraction chain re-associated, so any *future* reservation for
    #: such a circuit could drift by an ulp on recompute — the continuation
    #: transform refuses to keep those layers (see
    #: ``InterCoflowSimulator._transform_continuation``).
    banked_circuits: Set[Circuit] = field(default_factory=set)
    switching_count: int = 0
    #: Memoized ``CoflowView.bottleneck`` over the current ``remaining``.
    #: Every write to ``remaining`` resets it to None (see ``_advance`` and
    #: ``_apply_guard_service``); ``_ordered_ids`` recomputes on demand.
    bottleneck_cache: Optional[float] = None

    @property
    def done(self) -> bool:
        return all(p <= TIME_EPS for p in self.remaining.values())


@dataclass(slots=True)
class _PlanLayer:
    """One Coflow's cached plan inside the layered PRT (insertion order =
    priority order at the time the layer was planned)."""

    coflow_id: int
    plan: CoflowSchedule
    #: PRT checkpoint taken just before this layer's reservations.
    token: int


def _same_future_occupancy(
    old: CoflowSchedule, new: CoflowSchedule, now: float
) -> bool:
    """True when two plans reserve bit-identical port time on ``[now, ∞)``.

    Exact float comparison on purpose: a reused downstream plan is only
    byte-equivalent to a full replan if the constraint set above it is
    *identical*, not merely close.  Anything that drifts — even by one ulp
    — must invalidate the suffix.
    """
    old_iv = [
        (r.src, r.dst, r.start if r.start > now else now, r.end)
        for r in old.reservations
        if r.end > now
    ]
    new_iv = [
        (r.src, r.dst, r.start if r.start > now else now, r.end)
        for r in new.reservations
        if r.end > now
    ]
    old_iv.sort()
    new_iv.sort()
    return old_iv == new_iv


class InterCoflowSimulator:
    """Event-driven replay of a trace under Sunflow inter-Coflow scheduling.

    Args:
        trace: the Coflows with their arrival times.
        bandwidth_bps: link rate ``B``.
        delta: reconfiguration delay ``δ``.
        policy: inter-Coflow priority policy (shortest-Coflow-first by
            default, as in the paper's evaluation).
        order: intra-Coflow reservation consideration order.
        guard: optional starvation guard; its ``τ`` slices are reserved in
            every plan and serve all Coflows on the enabled circuits.
        priority_classes: operator-assigned classes per Coflow id (lower is
            more important); defaults to a single class.
        incremental: when True (default), replans reuse the unchanged
            prefix of the previous plan instead of recomputing every
            active Coflow at every event; results are identical to the
            full-replan path (``incremental=False``), which remains
            available for validation.  Guarded runs always use the full
            path (the guard horizon moves every event, so no prefix
            survives anyway).
        perf: counter sink for replans avoided / reservations made / wall
            time per phase; a fresh :class:`~repro.perf.PerfCounters` is
            created if omitted and exposed as :attr:`perf`.
    """

    def __init__(
        self,
        trace: CoflowTrace,
        bandwidth_bps: float = DEFAULT_BANDWIDTH,
        delta: float = DEFAULT_DELTA,
        policy: Optional[Policy] = None,
        order: ReservationOrder = ReservationOrder.ORDERED_PORT,
        guard: Optional[StarvationGuard] = None,
        priority_classes: Optional[Dict[int, int]] = None,
        rng: Optional[random.Random] = None,
        incremental: bool = True,
        perf: Optional[PerfCounters] = None,
        plan_cache: Optional[PlanCache] = None,
        cache_scope: Optional[int] = None,
    ) -> None:
        self.trace = trace.sorted_by_arrival()
        self.bandwidth_bps = bandwidth_bps
        self.delta = delta
        self.policy = policy if policy is not None else ShortestFirst()
        self.guard = guard
        self.priority_classes = priority_classes or {}
        self.scheduler = SunflowScheduler(
            delta=delta,
            order=order,
            rng=rng,
            plan_cache=plan_cache,
            cache_scope=cache_scope,
        )
        self.incremental = incremental
        self.perf = perf if perf is not None else PerfCounters()
        # Let the scheduler charge its packing / kernel time to the same
        # counters so the ``plan.*`` sub-timers land in one snapshot.
        self.scheduler.perf = self.perf
        # Incremental-replan state: a persistent layered PRT plus the plan
        # stack it currently holds, in planning (priority) order.
        self._prt = PortReservationTable()
        self._layers: List[_PlanLayer] = []
        #: Journal size past which the layered PRT is compacted by a full
        #: recompute (kept layers never shrink it on their own).
        self._compact_reservations = 60_000
        #: Dead (completed-Coflow) layers counted by the last prefix walk.
        #: When they outnumber the active set, the next replan compacts —
        #: keeping the per-event walk O(active), not O(history).
        self._dead_layers = 0
        #: Per-Coflow view cache for ``_ordered_ids``: ``cid -> (state,
        #: view)``.  The state reference guards against a foreign driver
        #: (the differential suites replan hand-built active dicts) reusing
        #: a view over the wrong ``remaining`` mapping.
        self._views: Dict[int, Tuple[_ActiveCoflow, CoflowView]] = {}
        #: Memoized priority order: ``(input ids, ordered ids)``.  Valid
        #: until any view's bottleneck is invalidated or membership (or
        #: even iteration order) of the active set changes.
        self._order_cache: Optional[Tuple[Tuple[int, ...], List[int]]] = None

    # ------------------------------------------------------------------
    def run(self) -> SimulationReport:
        """Replay the whole trace; returns one record per Coflow."""
        self.begin_run()
        self.event_times = run_replay(self, list(self.trace))
        return self.finish_run()

    def begin_run(self, report=None) -> None:
        """Reset per-run state; the ReplayHost hooks are live afterwards.

        Split from :meth:`run` so a composite host (the K-core simulator)
        can drive several per-core instances through one shared
        :func:`~repro.sim.engine.run_replay` loop.

        Args:
            report: optional completion-record sink (anything with
                ``add(record)``).  The streaming replay passes a
                bounded-memory :class:`~repro.sim.streaming.StreamingReport`
                here; by default a full in-memory
                :class:`~repro.sim.results.SimulationReport` is created.
        """
        if report is None:
            report = SimulationReport("sunflow", self.bandwidth_bps, self.delta)
        self._report = report
        self._active = {}
        self._schedules = {}
        self._prt = PortReservationTable()
        self._layers = []
        self._dead_layers = 0
        self._views = {}
        self._order_cache = None
        # Per-Coflow completion predictions, re-pushed only when a plan
        # object actually changes; ``peek_time`` is the next completion.
        self._completions = IndexedEventQueue()
        self._predicted = {}
        cache = self.scheduler.plan_cache
        self._cache_baseline = dict(cache.counters) if cache is not None else {}

    def finish_run(self) -> SimulationReport:
        """Fold this run's share of the (scheduler-lifetime) cache counters
        into the simulation's perf counters and return the report."""
        cache = self.scheduler.plan_cache
        if cache is not None:
            for name, value in cache.counters.items():
                self.perf.inc(name, value - self._cache_baseline.get(name, 0))
        return self._report

    # ------------------------------------------------------------------
    # ReplayHost hooks (driven by repro.sim.engine.run_replay)
    # ------------------------------------------------------------------
    def has_active(self) -> bool:
        return bool(self._active)

    def admit(self, coflow: Coflow, now: float) -> None:
        self._active[coflow.coflow_id] = _ActiveCoflow(
            coflow=coflow,
            remaining=PackedDemand(coflow.processing_times(self.bandwidth_bps)),
        )

    def plan(self, now: float, next_arrival: float) -> float:
        perf = self.perf
        perf.inc("events")
        with perf.timer("plan"):
            schedules = self._schedules = self._replan(self._active, now)
        completions = self._completions
        predicted = self._predicted
        for cid, plan in schedules.items():
            if predicted.get(cid) is not plan:
                predicted[cid] = plan
                completions.schedule(cid, plan.completion_time)
        event_time = min(next_arrival, completions.peek_time())
        if self.guard is not None:
            # Wake at the next guard-slice end inside the horizon so
            # Coflows drained by shared guard service complete promptly.
            for window in self.guard.windows_between(now, event_time):
                if window.end > now + TIME_EPS:
                    event_time = min(event_time, window.end)
                    break
        return event_time

    def advance(self, now: float, event_time: float) -> None:
        perf = self.perf
        with perf.timer("advance"):
            self._advance(self._active, self._schedules, now, event_time)
        with perf.timer("record"):
            self._record_completions(self._active, self._report, event_time)

    # ------------------------------------------------------------------
    def _ordered_ids(self, active: Dict[int, _ActiveCoflow]) -> List[int]:
        """Active Coflow ids in the policy's priority order.

        Both the per-Coflow :class:`~repro.core.policies.CoflowView` and
        the sorted order are cached across events with write-site
        invalidation: a view survives until its Coflow's ``remaining`` is
        written (``bottleneck_cache`` reset — the same signal the SEBF
        bottleneck memo uses), and the order survives until any view
        changes or the active set does.  An event that only admits or
        only completes therefore re-sorts, but an event in a stable busy
        period reuses the previous order outright — per-event ordering
        cost tracks the number of *touched* Coflows, not actives × events.
        Cache state is keyed by the state object's identity, so foreign
        drivers (the differential suites replan hand-built active dicts)
        can never read a view over the wrong ``remaining`` mapping.
        """
        cache = self._views
        priority_classes = self.priority_classes
        dirty = False
        views: List[CoflowView] = []
        for cid, state in active.items():
            entry = cache.get(cid)
            if entry is None or entry[0] is not state:
                view = CoflowView(
                    coflow_id=cid,
                    arrival_time=state.coflow.arrival_time,
                    remaining_times=state.remaining,
                    priority_class=priority_classes.get(cid, 0),
                    bottleneck_hint=state.bottleneck_cache,
                )
                cache[cid] = (state, view)
                dirty = True
            else:
                view = entry[1]
            if state.bottleneck_cache is None:
                # Memoize for the next event: ``remaining`` writes reset
                # the cache, so the hint is always the exact recompute.
                view.bottleneck_hint = None
                state.bottleneck_cache = view.bottleneck_hint = view.bottleneck
                dirty = True
            elif view.bottleneck_hint is None:
                view.bottleneck_hint = state.bottleneck_cache
                dirty = True
            views.append(view)
        if len(cache) > len(views):
            # Foreign driver dropped Coflows without _record_completions;
            # prune so the view cache stays O(active).
            for cid in [cid for cid in cache if cid not in active]:
                del cache[cid]
        input_ids = tuple(active)
        memo = self._order_cache
        if not dirty and memo is not None and memo[0] == input_ids:
            self.perf.inc("order_reuses")
            return memo[1]
        ordered = [view.coflow_id for view in self.policy.order(views)]
        self._order_cache = (input_ids, ordered)
        return ordered

    def _replan(
        self, active: Dict[int, _ActiveCoflow], now: float
    ) -> Dict[int, CoflowSchedule]:
        """(Re)plan every active Coflow's remaining demand at ``now``.

        Dispatches to the incremental prefix-reuse path unless it is
        disabled, a starvation guard is active (the guard's reservation
        horizon moves with every event, so no plan prefix survives and the
        full path is just as fast), or the consideration order is RANDOM
        (every plan the incremental path skips would also skip that plan's
        ``rng.shuffle``, desynchronizing the shared random stream and with
        it every later plan).
        """
        if (
            self.incremental
            and self.guard is None
            and self.scheduler.order is not ReservationOrder.RANDOM
        ):
            return self._replan_incremental(active, now)
        return self._replan_full(active, now)

    def _replan_full(
        self, active: Dict[int, _ActiveCoflow], now: float
    ) -> Dict[int, CoflowSchedule]:
        """Re-run InterCoflow over the remaining demand of active Coflows."""
        ordered = self._ordered_ids(active)
        demands = [(cid, active[cid].remaining) for cid in ordered]
        established = {cid: state.established for cid, state in active.items()}
        perf = self.perf
        perf.inc("full_replans")

        horizon = self._guard_horizon(active, now)
        while True:
            prt = PortReservationTable()
            if self.guard is not None:
                self.guard.reserve_windows(prt, now, horizon)
            prt, schedules = self.scheduler.schedule_many(
                demands, start_time=now, prt=prt, established=established
            )
            if self.guard is None:
                break
            latest = max(s.completion_time for s in schedules.values())
            if latest <= horizon - self.guard.cycle:
                break
            # Plan ran past the reserved guard region; extend and retry so
            # no plan escapes the guard's periodic blackouts.
            horizon = latest + 2 * self.guard.max_service_gap
        perf.inc("plans_computed", len(schedules))
        perf.inc(
            "reservations_made",
            sum(len(s.reservations) for s in schedules.values()),
        )
        return schedules

    def _replan_incremental(
        self, active: Dict[int, _ActiveCoflow], now: float
    ) -> Dict[int, CoflowSchedule]:
        """Prefix-reuse replanning over the persistent layered PRT.

        ``schedule_many`` fills the PRT in strict priority order, so a
        Coflow's plan depends only on (a) its own remaining demand and
        established circuits and (b) the port time reserved by
        higher-priority Coflows.  At an event we therefore:

        1. keep the prefix of plan layers whose Coflow is untouched (no
           reservation started before ``now``) and whose priority rank is
           unchanged;
        2. roll the PRT back to the first dirty layer;
        3. walking down the dirty suffix, *replay* a cached plan verbatim
           while the constraint set above is bit-identical to the one it
           was computed against, and re-run ``schedule_demand`` otherwise.

        A replan whose future occupancy comes out bit-identical to the
        cached plan (the common case: a served Coflow continuing its
        established circuits) keeps the suffix below it reusable.
        """
        perf = self.perf
        perf.inc("incremental_replans")
        order_ids = self._ordered_ids(active)
        prt, layers = self._prt, self._layers
        if len(prt) > self._compact_reservations or self._dead_layers > max(
            64, 2 * len(active)
        ):
            # The journal only grows while layers are kept in place, and
            # completed Coflows' dead layers pile up at the front of the
            # stack, stretching every prefix walk.  Once either passes its
            # threshold, pay one full recompute (identical results by
            # construction) to reset every per-port array and drop the
            # dead prefix — bounding per-event cost by the active set, not
            # the trace history.
            perf.inc("prt_compactions")
            prt.clear()
            layers.clear()
            self._dead_layers = 0

        # 1. Reusable prefix.
        keep = 0
        ptr = 0
        above_ids: Set[int] = set()
        while keep < len(layers):
            layer = layers[keep]
            if layer.coflow_id not in active:
                # Completed Coflow: all its port time lies in the past, so
                # the layer constrains nothing ahead and may stay in place.
                if layer.plan.completion_time > now + TIME_EPS:
                    break
                above_ids.add(layer.coflow_id)
                keep += 1
                continue
            if ptr >= len(order_ids) or order_ids[ptr] != layer.coflow_id:
                break
            if layer.plan.first_start() < now - TIME_EPS:
                # Received service or setup.  A fresh recompute would
                # usually reproduce this plan's future bit-for-bit; when
                # that is provable, swap in the continuation plan and keep
                # the layer's reservations in place (no rollback, no
                # replanning).
                _t0 = perf_counter()
                transformed = self._transform_continuation(
                    layer.plan, active[layer.coflow_id], now, above_ids
                )
                perf.add_time("plan.transform", perf_counter() - _t0)
                if transformed is None:
                    perf.inc("transform_fallbacks")
                    break
                layer.plan = transformed
                perf.inc("plans_transformed")
            above_ids.add(layer.coflow_id)
            keep += 1
            ptr += 1

        # 2. Roll back the dirty suffix.
        self._dead_layers = keep - ptr
        dropped = layers[keep:]
        if ptr == 0:
            # No live plan survives the prefix walk; anything still kept is
            # a completed Coflow whose port time lies wholly in the past and
            # so constrains nothing from ``now`` on.  Dropping the whole
            # table is both the compaction (per-port lists would otherwise
            # grow with the age of the run) and a rollback that costs O(1)
            # instead of popping every journal entry.
            if layers or dropped:
                perf.inc("prt_compactions")
                prt.clear()
                layers.clear()
                self._dead_layers = 0
        elif dropped:
            _t0 = perf_counter()
            undone = prt.rollback(dropped[0].token)
            perf.add_time("plan.rollback", perf_counter() - _t0)
            perf.inc("reservations_rolled_back", undone)
            del layers[keep:]
        perf.inc("plans_kept", ptr)
        perf.inc("replans_avoided", ptr)

        cached = [layer for layer in dropped if layer.coflow_id in active]
        cached_ids = {layer.coflow_id for layer in cached}
        schedules = {
            layer.coflow_id: layer.plan
            for layer in layers
            if layer.coflow_id in active
        }

        # 3. Rebuild the suffix.  Reuse here rests on a *superset*
        # argument rather than bit-identical context: while every layer
        # placed so far holds at least the port time it held when a
        # cached plan below was computed (verbatim replays and
        # continuation transforms hold exactly it; a new arrival only
        # adds), added occupancy can only remove feasible instants — the
        # cached plan's own blocking chain already proves nothing could
        # have been placed earlier, so if its reservations still *fit*
        # the table, Algorithm 1 would reproduce them bit-for-bit.  The
        # fit test is `PortReservationTable.replay` itself: a conflict
        # rolls back and falls through to a true recompute.  A fresh
        # recompute whose future occupancy differs from the dropped plan
        # (checked exactly) breaks the superset for everything below.
        #
        # The gap-signature plan cache layers on top of this: for every
        # unestablished Coflow in the suffix we *fetch first* — the
        # cached profiles prove the planning context independently of the
        # superset chain, so a hit is valid even after a priority
        # reorder broke it.  A miss hands back the probe; whichever path
        # then produces the plan (verbatim replay, continuation
        # transform, or a true recompute) stores under it, so recurrences
        # first seen by the replanner still seed future hits.
        scheduler = self.scheduler
        cache = scheduler.plan_cache
        cache_ok = (
            cache is not None and scheduler.order is not ReservationOrder.RANDOM
        )
        superset = True
        cptr = 0
        for cid in order_ids[ptr:]:
            state = active[cid]
            token = prt.checkpoint()
            old_plan = None
            if cptr < len(cached) and cached[cptr].coflow_id == cid:
                old_plan = cached[cptr].plan
                cptr += 1
            elif cid in cached_ids:
                # Priority reordering within the suffix: a layer above
                # this Coflow may have dropped port time it held when the
                # cached plans below were computed.
                superset = False
            plan = None
            probe = None
            if cache_ok and not state.established:
                fetched, probe = cache.fetch(
                    prt, scheduler._cache_config, cid, state.remaining, now
                )
                if fetched is not None:
                    # Bit-for-bit what a fresh recompute would produce
                    # (and already replayed into the PRT by the fetch), so
                    # the bookkeeping mirrors the recompute path below.
                    plan = CoflowSchedule(
                        coflow_id=cid, start_time=now, reservations=fetched
                    )
                    state.banked_circuits.clear()
                    perf.inc("replans_avoided")
                    perf.inc("reservations_replayed", len(fetched))
                    if superset and old_plan is not None:
                        superset = _same_future_occupancy(old_plan, plan, now)
            if plan is None and superset and old_plan is not None:
                if (
                    old_plan.first_start() >= now - TIME_EPS
                    and not state.established
                ):
                    _t0 = perf_counter()
                    try:
                        prt.replay(old_plan.reservations)
                    except PortConflictError:
                        perf.add_time("plan.replay", perf_counter() - _t0)
                        perf.inc(
                            "reservations_rolled_back", prt.rollback(token)
                        )
                    else:
                        perf.add_time("plan.replay", perf_counter() - _t0)
                        plan = old_plan
                        perf.inc("plans_reused")
                        perf.inc("replans_avoided")
                        perf.inc(
                            "reservations_replayed", len(plan.reservations)
                        )
                        if probe is not None:
                            cache.store(
                                probe, plan.reservations, plan.first_start()
                            )
                elif old_plan.first_start() < now - TIME_EPS:
                    # A served Coflow displaced by the reorder: its
                    # continuation plan is still provable the same way as
                    # in the prefix walk; replaying it performs the fit
                    # test against the layers now above it.
                    _t0 = perf_counter()
                    transformed = self._transform_continuation(
                        old_plan, state, now, None
                    )
                    perf.add_time("plan.transform", perf_counter() - _t0)
                    if transformed is not None:
                        _t0 = perf_counter()
                        try:
                            prt.replay(transformed.reservations)
                        except PortConflictError:
                            perf.add_time(
                                "plan.replay", perf_counter() - _t0
                            )
                            perf.inc(
                                "reservations_rolled_back",
                                prt.rollback(token),
                            )
                        else:
                            perf.add_time(
                                "plan.replay", perf_counter() - _t0
                            )
                            plan = transformed
                            perf.inc("plans_transformed")
                            perf.inc("replans_avoided")
                            perf.inc(
                                "reservations_replayed",
                                len(plan.reservations),
                            )
                            if probe is not None:
                                cache.store(
                                    probe,
                                    plan.reservations,
                                    plan.first_start(),
                                )
            if plan is None:
                plan = scheduler.schedule_demand(
                    prt,
                    cid,
                    state.remaining,
                    start_time=now,
                    established=state.established,
                    cache_probe=probe,
                )
                # ``remaining`` is this plan's baseline again; future
                # banking re-dirties circuits from here.
                state.banked_circuits.clear()
                perf.inc("plans_computed")
                perf.inc("reservations_made", len(plan.reservations))
                if superset and old_plan is not None:
                    superset = _same_future_occupancy(old_plan, plan, now)
            layers.append(_PlanLayer(coflow_id=cid, plan=plan, token=token))
            schedules[cid] = plan
        return schedules

    def _transform_continuation(
        self,
        plan: CoflowSchedule,
        state: _ActiveCoflow,
        now: float,
        above_ids: Optional[Set[int]],
    ) -> Optional[CoflowSchedule]:
        """The continuation plan a fresh recompute would produce — or None.

        A served Coflow's replan at ``now`` is, in the common case, just
        its previous plan with every running reservation clamped to start
        at ``now``: established circuits continue to their anchored ends
        and untouched future reservations are re-placed identically.  This
        method proves that outcome *bit-for-bit* and builds the plan
        without running Algorithm 1 — the layer's reservations then stay
        in the PRT (old head intervals ``[s, end)`` and recomputed heads
        ``[now, end)`` occupy identical port time from ``now`` on).

        The proof obligations, each checked exactly (any failure returns
        None and the caller falls back to a true recompute):

        * the scheduler is deterministic for this layer — ``ORDERED_PORT``
          consideration order (``RANDOM`` consumes rng state, and
          ``SORTED_DEMAND`` re-orders entries as banked demand changes)
          and no quantization (re-quantizing banked demand re-rounds);
        * every reservation covering ``now`` is an established circuit
          whose recomputed continuation ``now + (setup + remaining)``
          lands on its anchor within ``TIME_EPS`` (the planner's anchor
          snap then reproduces the end exactly);
        * every strictly-future reservation belongs to a circuit that was
          never re-banked since the plan was computed (its remaining is
          bitwise the planner's own value) and is not an established
          circuit's overflow;
        * every future circuit is provably *blocked at ``now``* in the
          recompute's start batch: one of its ports belongs to one of
          this Coflow's own established heads that precedes the circuit
          in ``ORDERED_PORT`` consideration order (and so is re-placed —
          marking its ports taken — before the circuit is examined), or
          is covered at ``now`` by a reservation of a layer above this
          one.  A circuit free on both ports at ``now`` could be placed
          there and then, and only then, diverge from the old plan; once
          every circuit is blocked at the origin, its
          wait-release-reattempt chain sees the exact port occupancy the
          original run saw and converges to the same placement;
        * the demand the plan serves covers exactly the circuits with
          remaining demand.

        Two call sites share this proof.  The prefix walk transforms a
        layer *in place* — the old reservations stay in the PRT (which
        then also holds lower layers' reservations, so coverage only
        counts when the covering Coflow is in ``above_ids``).  The suffix
        rebuild transforms a *dropped* plan — the PRT holds exactly the
        layers above (pass ``above_ids=None``: any coverage counts), and
        the caller must `replay` the returned reservations, which doubles
        as the fit test against layers that changed above.
        """
        scheduler = self.scheduler
        if (
            scheduler.order is not ReservationOrder.ORDERED_PORT
            or scheduler.quantum is not None
        ):
            return None
        reservations = plan.reservations
        prt = self._prt
        established = state.established
        remaining = state.remaining
        delta = scheduler.delta
        cutoff = plan.index_at_or_after(now)
        cid = plan.coflow_id

        if prt_mod._use_native():
            # One C call runs the whole proof (heads, blocked-at-now walk,
            # coverage) against the PRT's array buffers.  It returns the
            # rebuilt heads on success, ``None`` when a proof obligation
            # fails, and ``False`` when it declines (ports outside int64
            # hashing range, foreign reservation types) — only then does
            # the pure-Python twin below run.
            result = prt_mod._native.transform_continuation(
                prt,
                Reservation,
                cid,
                now,
                delta,
                TIME_EPS,
                reservations,
                cutoff,
                established,
                remaining,
                state.banked_circuits,
                above_ids,
            )
            if result is not False:
                if result is None:
                    return None
                return CoflowSchedule(
                    coflow_id=cid,
                    start_time=now,
                    reservations=result + reservations[cutoff:],
                )

        heads: List[Reservation] = []
        #: Established heads are pairwise port-disjoint (their reservations
        #: all cover ``now``), so one dict per side resolves "is there a
        #: preceding head on this port" in O(1).
        head_by_src: Dict[int, int] = {}
        head_by_dst: Dict[int, int] = {}
        for i in range(cutoff):
            old = reservations[i]
            if now >= old.end - TIME_EPS:
                continue  # fully in the past: constrains nothing ahead
            circuit = (old.src, old.dst)
            est = established.get(circuit)
            if est is None or est[1] != old.end or old.src in head_by_src:
                return None
            rem = remaining.get(circuit, 0.0)
            if rem <= TIME_EPS:
                # The recompute would drop this circuit entirely while the
                # old reservation still holds port time: not a continuation.
                return None
            setup = min(delta, est[0])
            # Exact mirror of ``_make_reservation``: ``desired_length =
            # setup + remaining``, ``end = t + desired_length``, snapped to
            # the anchor when within tolerance.
            if abs(now + (setup + rem) - old.end) > TIME_EPS:
                return None
            heads.append(
                Reservation(
                    start=now,
                    end=old.end,
                    src=old.src,
                    dst=old.dst,
                    coflow_id=cid,
                    setup=setup,
                )
            )
            head_by_src[old.src] = old.dst
            head_by_dst[old.dst] = old.src
        if len(heads) != len(established):
            return None

        # The future-reservation walk is the transform's hot loop (it
        # touches every planned reservation, not just the established
        # heads), so the lookups it repeats per iteration are bound once.
        banked = state.banked_circuits
        pending_circuits: Set[Circuit] = set()
        pending_add = pending_circuits.add
        head_src_of = head_by_src.get
        head_dst_of = head_by_dst.get
        input_at = prt.input_reservation_at
        output_at = prt.output_reservation_at
        for i in range(cutoff, len(reservations)):
            future = reservations[i]
            src = future.src
            dst = future.dst
            circuit = (src, dst)
            if circuit in pending_circuits:
                continue
            head_dst = head_src_of(src)
            if head_dst == dst or circuit in banked:
                return None
            # Blocked-at-now proof (see docstring).
            if head_dst is not None and head_dst < dst:
                pending_add(circuit)
                continue
            head_src = head_dst_of(dst)
            if head_src is not None and head_src < src:
                pending_add(circuit)
                continue
            res = input_at(src, now)
            if res is None or (
                above_ids is not None and res.coflow_id not in above_ids
            ):
                res = output_at(dst, now)
                if res is None or (
                    above_ids is not None and res.coflow_id not in above_ids
                ):
                    return None
            pending_add(circuit)

        for circuit, rem in remaining.items():
            if (
                rem > TIME_EPS
                and circuit not in pending_circuits
                and head_by_src.get(circuit[0]) != circuit[1]
            ):
                return None

        return CoflowSchedule(
            coflow_id=cid,
            start_time=now,
            reservations=heads + reservations[cutoff:],
        )

    def _guard_horizon(self, active: Dict[int, _ActiveCoflow], now: float) -> float:
        if self.guard is None:
            return now
        serial = sum(
            sum(state.remaining.values()) + len(state.remaining) * self.delta
            for state in active.values()
        )
        inflation = self.guard.cycle / self.guard.period
        return now + serial * (1.0 + inflation) + 2 * self.guard.max_service_gap

    # ------------------------------------------------------------------
    def _advance(
        self,
        active: Dict[int, _ActiveCoflow],
        schedules,
        start: float,
        end: float,
    ) -> None:
        """Bank transfer progress from the plan over ``[start, end)``.

        Every plan in ``schedules`` was computed (or revalidated) at
        ``start``, so its reservations all begin at or after ``start``;
        the bisect visits only those beginning before ``end`` instead of
        scanning the whole plan.
        """
        for cid, schedule in schedules.items():
            state = active[cid]
            established: Dict[Circuit, Tuple[float, float]] = {}
            reservations = schedule.reservations
            cutoff = schedule.index_at_or_after(end)
            for index in range(cutoff):
                reservation = reservations[index]
                served = reservation.transmitted_before(end)
                circuit = reservation.circuit
                if served > 0:
                    left = state.remaining.get(circuit, 0.0) - served
                    state.remaining[circuit] = max(0.0, left)
                    state.banked_circuits.add(circuit)
                    state.bottleneck_cache = None
                # A reconfiguration that began before the event counts as a
                # switching event even if the plan is later discarded.
                if reservation.setup > 0:
                    state.switching_count += 1
                if end < reservation.end - TIME_EPS:
                    # Circuit is up (or mid-setup) at the event instant; a
                    # replan reusing it immediately pays only the remaining
                    # setup time, and anchoring the planned end makes the
                    # continuation reproducible bit-for-bit.
                    established[circuit] = (
                        max(0.0, reservation.transmit_start - end),
                        reservation.end,
                    )
            state.established = established
        if self.guard is not None:
            self._apply_guard_service(active, start, end)

    def _apply_guard_service(
        self, active: Dict[int, _ActiveCoflow], start: float, end: float
    ) -> None:
        """Fluid shared service during the guard's ``τ`` slices in [start, end)."""
        assert self.guard is not None
        for window in self.guard.windows_between(start, end):
            transmit_start = window.start + self.guard.delta
            overlap = min(end, window.end) - max(start, transmit_start)
            if overlap <= TIME_EPS:
                continue
            for src, dst in self.guard.assignments[window.assignment_index]:
                sharers = [
                    state
                    for state in active.values()
                    if state.remaining.get((src, dst), 0.0) > TIME_EPS
                ]
                if not sharers:
                    continue
                share = overlap / len(sharers)
                for state in sharers:
                    left = state.remaining[(src, dst)] - share
                    state.remaining[(src, dst)] = max(0.0, left)
                    state.bottleneck_cache = None

    # ------------------------------------------------------------------
    def _record_completions(
        self, active: Dict[int, _ActiveCoflow], report: SimulationReport, now: float
    ) -> None:
        finished = [cid for cid, state in active.items() if state.done]
        for cid in finished:
            state = active.pop(cid)
            self._completions.cancel(cid)
            self._predicted.pop(cid, None)
            self._views.pop(cid, None)
            report.add(
                make_record(
                    state.coflow,
                    completion_time=now,
                    bandwidth_bps=self.bandwidth_bps,
                    delta=self.delta,
                    switching_count=state.switching_count,
                )
            )


@legacy_entry_point
def simulate_inter_sunflow(
    trace: CoflowTrace,
    bandwidth_bps: float = DEFAULT_BANDWIDTH,
    delta: float = DEFAULT_DELTA,
    policy: Optional[Policy] = None,
    order: ReservationOrder = ReservationOrder.ORDERED_PORT,
    guard: Optional[StarvationGuard] = None,
    priority_classes: Optional[Dict[int, int]] = None,
    rng: Optional[random.Random] = None,
) -> SimulationReport:
    """One-call trace replay under Sunflow inter-Coflow scheduling."""
    simulator = InterCoflowSimulator(
        trace,
        bandwidth_bps=bandwidth_bps,
        delta=delta,
        policy=policy,
        order=order,
        guard=guard,
        priority_classes=priority_classes,
        rng=rng,
    )
    return simulator.run()
