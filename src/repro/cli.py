"""Command-line interface: ``repro-sunflow`` (or ``python -m repro``).

Subcommands mirror the evaluation workflow:

* ``generate`` — synthesize a Facebook-like trace file,
* ``classify`` — Table-4 category breakdown of a trace,
* ``idleness`` — the §5.4 network-idleness metric,
* ``stats``    — workload statistics (widths, sizes, arrivals),
* ``intra``    — back-to-back Coflow service (Sunflow / Solstice / TMS /
  Edmond) with CCT-vs-bound summaries,
* ``inter``    — full trace replay (Sunflow / Varys / Aalo) with average
  CCT summaries,
* ``compare``  — all schedulers side by side,
* ``replay``   — inter-Coflow Sunflow replay of a text or binary trace;
  ``--stream`` runs it through the bounded-memory streaming engine
  (quantile sketch instead of per-Coflow records, O(active) state),
* ``convert``  — text trace → binary streaming trace (``SFTR``) in O(1)
  memory,
* ``timeline`` — ASCII rendering of one Coflow's circuit schedule,
* ``sweep``    — run a declarative experiment grid (TOML/JSON
  :class:`~repro.sweep.SweepSpec`) through the process-parallel sweep
  engine with a content-hash result cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import classify, network_idleness
from repro.core.policies import POLICIES
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    mean,
    percentile,
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
    simulate_packet,
)
from repro.units import GBPS, MS
from repro.workloads import (
    GeneratorConfig,
    FacebookLikeTraceGenerator,
    parse_trace,
    perturb_sizes,
    write_trace,
)

_INTRA_SCHEDULERS = ("sunflow", "solstice", "tms", "edmond")
_INTER_SCHEDULERS = ("sunflow", "varys", "aalo")


def _add_trace_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("trace", help="path to a coflow-benchmark format trace file")


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--bandwidth-gbps", type=float, default=1.0, help="link rate B (default 1 Gbps)"
    )
    parser.add_argument(
        "--delta-ms", type=float, default=10.0, help="reconfiguration delay δ (default 10 ms)"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sunflow",
        description="Sunflow (CoNEXT 2016) reproduction toolkit",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run the command under cProfile and print the top 25 functions "
        "by cumulative time to stderr (goes before the subcommand, e.g. "
        "`repro-sunflow --profile inter trace.txt`)",
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help="with --profile, also dump the raw cProfile stats to PATH "
        "(loadable with pstats or snakeviz) and trim the stderr report "
        "to the top 20 functions",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser("generate", help="synthesize a Facebook-like trace")
    generate.add_argument("output", help="trace file to write")
    generate.add_argument("--coflows", type=int, default=526)
    generate.add_argument("--ports", type=int, default=150)
    generate.add_argument("--seed", type=int, default=2016)
    generate.add_argument(
        "--max-width", type=int, default=None, help="cap on M2M mapper/reducer counts"
    )
    generate.add_argument(
        "--perturb", action="store_true", help="apply the paper's ±5%% size noise"
    )

    classify_cmd = commands.add_parser("classify", help="Table-4 category breakdown")
    _add_trace_argument(classify_cmd)

    stats = commands.add_parser("stats", help="workload statistics summary")
    _add_trace_argument(stats)

    idleness_cmd = commands.add_parser("idleness", help="network idleness (§5.4)")
    _add_trace_argument(idleness_cmd)
    _add_network_arguments(idleness_cmd)

    intra = commands.add_parser("intra", help="back-to-back Coflow service (§5.3)")
    _add_trace_argument(intra)
    _add_network_arguments(intra)
    intra.add_argument("--scheduler", choices=_INTRA_SCHEDULERS, default="sunflow")

    inter = commands.add_parser("inter", help="trace replay with arrivals (§5.4)")
    _add_trace_argument(inter)
    _add_network_arguments(inter)
    inter.add_argument("--scheduler", choices=_INTER_SCHEDULERS, default="sunflow")
    inter.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="shortest-first",
        help="inter-Coflow priority policy (Sunflow only)",
    )

    replay = commands.add_parser(
        "replay",
        help="inter-Coflow Sunflow replay (text or binary trace); "
        "--stream uses the bounded-memory streaming engine",
    )
    replay.add_argument(
        "trace", help="path to a text (coflow-benchmark) or binary (SFTR) trace"
    )
    _add_network_arguments(replay)
    replay.add_argument(
        "--policy",
        choices=sorted(POLICIES),
        default="shortest-first",
        help="inter-Coflow priority policy",
    )
    replay.add_argument(
        "--stream",
        action="store_true",
        help="stream arrivals from disk: O(active) memory, CCT quantile "
        "sketch instead of per-Coflow records",
    )
    replay.add_argument(
        "--digest-compression",
        type=int,
        default=200,
        help="streaming CCT sketch compression δ (memory and rank error "
        "both scale with it; default 200)",
    )

    convert = commands.add_parser(
        "convert",
        help="convert a text trace to the binary streaming format (SFTR)",
    )
    convert.add_argument("trace", help="text trace file to read")
    convert.add_argument("output", help="binary SFTR file to write")

    compare = commands.add_parser(
        "compare", help="run every scheduler on a trace and tabulate CCTs"
    )
    _add_trace_argument(compare)
    _add_network_arguments(compare)
    compare.add_argument(
        "--mode", choices=("intra", "inter"), default="intra",
        help="back-to-back service or full arrivals replay",
    )

    timeline = commands.add_parser(
        "timeline", help="render one Coflow's Sunflow circuit schedule as ASCII"
    )
    _add_trace_argument(timeline)
    _add_network_arguments(timeline)
    timeline.add_argument("--coflow-id", type=int, required=True)
    timeline.add_argument("--width", type=int, default=72)

    export = commands.add_parser(
        "export", help="simulate and write per-Coflow records as CSV"
    )
    _add_trace_argument(export)
    _add_network_arguments(export)
    export.add_argument("output", help="CSV file to write")
    export.add_argument(
        "--scheduler",
        choices=_INTRA_SCHEDULERS + ("varys", "aalo"),
        default="sunflow",
    )
    export.add_argument(
        "--mode", choices=("intra", "inter"), default="intra",
        help="back-to-back service or full arrivals replay",
    )

    sweep = commands.add_parser(
        "sweep", help="run a declarative experiment grid (repro.sweep)"
    )
    sweep.add_argument("spec", help="path to a TOML or JSON SweepSpec grid file")
    sweep.add_argument(
        "--workers", type=int, default=0,
        help="worker processes (0 = serial in-process, identical results)",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="content-hash result cache; re-runs recompute only changed cells",
    )
    sweep.add_argument(
        "--output-dir", default=None,
        help="write sweep.json + cells.csv here",
    )
    sweep.add_argument(
        "--timeout-s", type=float, default=None,
        help="per-cell wall-clock budget; late cells record a timeout result",
    )
    return parser


def _print_cct_summary(label: str, values: List[float]) -> None:
    print(
        f"{label}: mean {mean(values):.3f}  median {percentile(values, 50):.3f}  "
        f"p95 {percentile(values, 95):.3f}  max {max(values):.3f}"
    )


def _run_replay(args: argparse.Namespace) -> int:
    """The ``replay`` subcommand: streaming or in-memory Sunflow replay."""
    import time

    bandwidth = args.bandwidth_gbps * GBPS
    delta = args.delta_ms * MS
    policy = POLICIES[args.policy]

    if args.stream:
        from repro.sim.streaming import simulate_inter_sunflow_stream
        from repro.workloads.stream import open_any_trace

        start = time.perf_counter()
        result = simulate_inter_sunflow_stream(
            open_any_trace(args.trace),
            bandwidth_bps=bandwidth,
            delta=delta,
            policy=policy,
            digest_compression=args.digest_compression,
        )
        wall = time.perf_counter() - start
        summary = result.report.summary()
        print(
            f"CCT (s): mean {summary['mean_cct_s']:.3f}  "
            f"median {summary['median_cct_s']:.3f}  "
            f"p95 {summary['p95_cct_s']:.3f}  max {summary['max_cct_s']:.3f}"
        )
        print(
            f"average CCT: {summary['mean_cct_s']:.3f} s over "
            f"{summary['count']} coflows (streaming)"
        )
        counters = (
            result.perf.snapshot()["counts"] if result.perf is not None else {}
        )
        peak = counters.get("peak_rss_bytes")
        peak_text = f"{peak / 1e6:.0f} MB" if peak else "n/a"
        print(
            f"{result.events} events in {wall:.2f} s "
            f"({result.events / wall:.0f} events/s), peak RSS {peak_text}, "
            f"{counters.get('prt_compactions', 0)} compactions, "
            f"{counters.get('sketch_merges', 0)} sketch merges"
        )
        return 0

    from repro.workloads.stream import is_stream_trace, read_stream_trace

    if is_stream_trace(args.trace):
        trace = read_stream_trace(args.trace)
    else:
        trace = parse_trace(args.trace)
    report = simulate_inter_sunflow(trace, bandwidth, delta, policy=policy)
    _print_cct_summary("CCT (s)", report.ccts())
    print(f"average CCT: {report.average_cct():.3f} s over {len(report)} coflows")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.profile_out and not args.profile:
        build_parser().error("--profile-out requires --profile")
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        try:
            return profiler.runcall(_dispatch, args)
        finally:
            if args.profile_out:
                # Raw stats for offline tooling; keep the inline report
                # short since the full data is on disk.
                profiler.dump_stats(args.profile_out)
                print(f"profile stats written to {args.profile_out}", file=sys.stderr)
                limit = 20
            else:
                limit = 25
            stats = pstats.Stats(profiler, stream=sys.stderr)
            stats.sort_stats("cumulative").print_stats(limit)
            _print_plan_subtimers()
    return _dispatch(args)


def _print_plan_subtimers() -> None:
    """Append the replan-transaction phase breakdown to a profile report.

    cProfile attributes native-kernel time to opaque built-in frames; the
    ``plan.*`` sub-timers recover the phase structure (packing, rollback,
    replay, kernel, continuation transforms) regardless of backend.
    """
    from repro.perf import PLAN_SUBTIMERS, process_timers

    timers = process_timers()
    rows = [(name, timers[name]) for name in PLAN_SUBTIMERS if name in timers]
    if not rows:
        return
    print("plan phase breakdown (s):", file=sys.stderr)
    for name, seconds in rows:
        print(f"  {name:<16} {seconds:10.4f}", file=sys.stderr)


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "generate":
        config = GeneratorConfig(
            num_ports=args.ports,
            num_coflows=args.coflows,
            max_width=args.max_width,
            seed=args.seed,
        )
        trace = FacebookLikeTraceGenerator(config).generate()
        if args.perturb:
            trace = perturb_sizes(trace, seed=args.seed)
        write_trace(trace, args.output)
        print(
            f"wrote {len(trace)} coflows on {trace.num_ports} ports "
            f"({trace.total_bytes / 1e9:.1f} GB) to {args.output}"
        )
        return 0

    if args.command == "sweep":
        from repro.sweep import SweepRunner, SweepSpec

        spec = SweepSpec.from_file(args.spec)

        def show_progress(progress) -> None:
            eta = (
                f"{progress.eta_s:.0f}s" if progress.done < progress.total else "done"
            )
            print(
                f"[{progress.done}/{progress.total}] "
                f"{progress.cached} cached, {progress.failed} failed, ETA {eta}"
            )

        result = SweepRunner(
            spec,
            workers=args.workers,
            cache_dir=args.cache_dir,
            timeout_s=args.timeout_s,
            progress=show_progress,
        ).run()

        print(f"{'cell':<48} {'status':>8} {'avg CCT':>9} {'wall':>8}")
        for outcome in result.outcomes:
            avg = outcome.summary().get("average_cct")
            avg_text = f"{avg:>8.3f}s" if avg is not None else f"{'-':>9}"
            print(
                f"{outcome.cell_id:<48} {outcome.status:>8} {avg_text} "
                f"{outcome.wall_s:>7.2f}s"
            )
        print(
            f"sweep {result.name!r}: {len(result)} cells in {result.wall_s:.2f}s "
            f"({result.cache_hits} cached, {len(result.failures())} failed, "
            f"{result.workers} workers)"
        )
        if args.output_dir:
            json_path, csv_path = result.write(args.output_dir)
            print(f"wrote {json_path} and {csv_path}")
        return 1 if result.failures() else 0

    if args.command == "convert":
        from repro.workloads.stream import convert_text_trace

        count = convert_text_trace(args.trace, args.output)
        print(f"wrote {count} coflows to {args.output} (binary SFTR)")
        return 0

    if args.command == "replay":
        return _run_replay(args)

    trace = parse_trace(args.trace)

    if args.command == "stats":
        from repro.analysis.tracestats import trace_statistics

        print(trace_statistics(trace).as_text())
        return 0

    if args.command == "classify":
        breakdown = classify(trace)
        print(f"{'category':>12} {'coflow %':>10} {'bytes %':>10}")
        for row in breakdown.as_table():
            print(
                f"{row['category']:>12} {row['coflow_percent']:>10.1f} "
                f"{row['bytes_percent']:>10.3f}"
            )
        return 0

    bandwidth = args.bandwidth_gbps * GBPS
    if args.command == "idleness":
        print(f"idleness: {network_idleness(trace, bandwidth):.3f}")
        return 0

    delta = args.delta_ms * MS
    if args.command == "intra":
        if args.scheduler == "sunflow":
            report = simulate_intra_sunflow(trace, bandwidth, delta)
        else:
            scheduler = {
                "solstice": SolsticeScheduler,
                "tms": TmsScheduler,
                "edmond": EdmondScheduler,
            }[args.scheduler]()
            report = simulate_intra_assignment(trace, scheduler, bandwidth, delta)
        _print_cct_summary("CCT (s)", report.ccts())
        _print_cct_summary(
            "CCT / TcL", [r.cct_over_circuit_lower for r in report.records]
        )
        _print_cct_summary(
            "CCT / TpL", [r.cct_over_packet_lower for r in report.records]
        )
        _print_cct_summary(
            "switching / minimum", [r.normalized_switching for r in report.records]
        )
        return 0

    if args.command == "inter":
        if args.scheduler == "sunflow":
            report = simulate_inter_sunflow(
                trace, bandwidth, delta, policy=POLICIES[args.policy]
            )
        elif args.scheduler == "varys":
            report = simulate_packet(trace, VarysAllocator(), bandwidth)
        else:
            report = simulate_packet(trace, AaloAllocator(), bandwidth)
        _print_cct_summary("CCT (s)", report.ccts())
        print(f"average CCT: {report.average_cct():.3f} s over {len(report)} coflows")
        return 0

    if args.command == "compare":
        if args.mode == "intra":
            reports = {"sunflow": simulate_intra_sunflow(trace, bandwidth, delta)}
            for scheduler in (SolsticeScheduler(), TmsScheduler(), EdmondScheduler()):
                reports[scheduler.name] = simulate_intra_assignment(
                    trace, scheduler, bandwidth, delta
                )
            print(f"{'scheduler':>10} {'avg CCT':>9} {'CCT/TcL':>8} {'switch/min':>11}")
            for name, report in reports.items():
                ratios = [r.cct_over_circuit_lower for r in report.records]
                switching = [r.normalized_switching for r in report.records]
                print(
                    f"{name:>10} {report.average_cct():>8.2f}s "
                    f"{mean(ratios):>8.2f} {mean(switching):>11.2f}"
                )
        else:
            reports = {
                "sunflow": simulate_inter_sunflow(trace, bandwidth, delta),
                "varys": simulate_packet(trace, VarysAllocator(), bandwidth),
                "aalo": simulate_packet(trace, AaloAllocator(), bandwidth),
            }
            print(f"{'scheduler':>10} {'avg CCT':>9} {'p95 CCT':>9}")
            for name, report in reports.items():
                ccts = report.ccts()
                print(
                    f"{name:>10} {mean(ccts):>8.2f}s {percentile(ccts, 95):>8.2f}s"
                )
        return 0

    if args.command == "timeline":
        from repro.analysis.timeline import render_timeline
        from repro.core.sunflow import SunflowScheduler

        matches = [c for c in trace if c.coflow_id == args.coflow_id]
        if not matches:
            print(f"no coflow with id {args.coflow_id} in the trace")
            return 1
        coflow = matches[0]
        schedule = SunflowScheduler(delta=delta).schedule_coflow(
            coflow, bandwidth, start_time=0.0
        )
        print(
            f"coflow {coflow.coflow_id}: |C| = {coflow.num_flows}, "
            f"{coflow.total_bytes / 1e6:.0f} MB, category {coflow.category.value}"
        )
        print(render_timeline(schedule.reservations, width=args.width))
        print(f"CCT = {schedule.makespan:.3f} s, {schedule.num_setups} setups")
        return 0

    if args.command == "export":
        from repro.analysis.export import write_records_csv

        if args.scheduler in ("varys", "aalo"):
            allocator = VarysAllocator() if args.scheduler == "varys" else AaloAllocator()
            report = simulate_packet(trace, allocator, bandwidth)
        elif args.scheduler == "sunflow":
            if args.mode == "inter":
                report = simulate_inter_sunflow(trace, bandwidth, delta)
            else:
                report = simulate_intra_sunflow(trace, bandwidth, delta)
        else:
            scheduler = {
                "solstice": SolsticeScheduler,
                "tms": TmsScheduler,
                "edmond": EdmondScheduler,
            }[args.scheduler]()
            report = simulate_intra_assignment(trace, scheduler, bandwidth, delta)
        count = write_records_csv(report, args.output)
        print(f"wrote {count} records to {args.output}")
        return 0

    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
