#!/usr/bin/env python
"""Baseline-scheduler decomposition benchmark (numpy kernels vs references).

Standalone CLI (not a pytest bench): decomposes one 150-port random
demand matrix with each baseline scheduler under both kernel backends
(``REPRO_KERNEL=numpy`` vs ``python``), verifies the schedules are
identical (same circuits, durations within 1e-9 relative), and writes the
timing summary plus the kernel layer's perf counters to
``BENCH_schedulers.json`` at the repository root.

    PYTHONPATH=src python benchmarks/bench_schedulers.py
    PYTHONPATH=src python benchmarks/bench_schedulers.py --ports 80 --density 0.2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

#: Schedulers the kernel layer must accelerate by ``SPEEDUP_TARGET``.
TARGET_SCHEDULERS = ("solstice", "tms", "edmond")
SPEEDUP_TARGET = 4.0


def make_demand(ports: int, density: float, seed: int):
    """Random sparse demand (processing seconds) over the full fabric."""
    rng = random.Random(seed)
    demand = {}
    for src in range(ports):
        for dst in range(ports):
            if src != dst and rng.random() < density:
                demand[(src, dst)] = rng.random() * 0.5 + 0.01
    return demand


def compare_schedules(kernel, reference) -> int:
    """Count mismatched assignments between the two backends' schedules."""
    if len(kernel.assignments) != len(reference.assignments):
        return abs(len(kernel.assignments) - len(reference.assignments)) + sum(
            1
            for ours, theirs in zip(kernel.assignments, reference.assignments)
            if ours.circuits != theirs.circuits
        )
    mismatches = 0
    for ours, theirs in zip(kernel.assignments, reference.assignments):
        if ours.circuits != theirs.circuits:
            mismatches += 1
            continue
        tolerance = 1e-9 * max(abs(ours.duration), abs(theirs.duration), 1e-12)
        if abs(ours.duration - theirs.duration) > tolerance:
            mismatches += 1
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ports", type=int, default=150, help="fabric radix")
    parser.add_argument(
        "--density", type=float, default=0.3, help="demand matrix fill fraction"
    )
    parser.add_argument("--seed", type=int, default=7, help="demand seed")
    parser.add_argument(
        "--schedulers",
        nargs="*",
        default=None,
        help="subset of schedulers to run (default: all four)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_schedulers.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)

    from repro.kernels import use_backend
    from repro.perf import scheduler_counters
    from repro.schedulers import (
        BvnScheduler,
        EdmondScheduler,
        SolsticeScheduler,
        TmsScheduler,
    )

    available = {
        "solstice": SolsticeScheduler,
        "tms": TmsScheduler,
        "edmond": EdmondScheduler,
        "bvn": BvnScheduler,
    }
    names = args.schedulers or list(available)
    unknown = [name for name in names if name not in available]
    if unknown:
        parser.error(f"unknown schedulers: {', '.join(unknown)}")

    demand = make_demand(args.ports, args.density, args.seed)
    result = {
        "bench": "schedulers",
        "config": {
            "ports": args.ports,
            "density": args.density,
            "seed": args.seed,
            "entries": len(demand),
        },
        "speedup_target": SPEEDUP_TARGET,
        "target_schedulers": list(TARGET_SCHEDULERS),
        "schedulers": {},
    }
    total_mismatches = 0
    shortfalls = []

    for name in names:
        scheduler = available[name]()

        scheduler_counters.reset()
        with use_backend("numpy"):
            start = time.perf_counter()
            kernel_schedule = scheduler.schedule(demand, args.ports)
            kernel_wall = time.perf_counter() - start
        counters = scheduler_counters.snapshot()["counts"]

        with use_backend("python"):
            start = time.perf_counter()
            reference_schedule = scheduler.schedule(demand, args.ports)
            reference_wall = time.perf_counter() - start

        mismatches = compare_schedules(kernel_schedule, reference_schedule)
        total_mismatches += mismatches
        speedup = reference_wall / kernel_wall if kernel_wall > 0 else None
        result["schedulers"][name] = {
            "kernel_wall_s": kernel_wall,
            "reference_wall_s": reference_wall,
            "speedup": speedup,
            "assignments": len(kernel_schedule.assignments),
            "mismatches": mismatches,
            "counters": counters,
        }
        print(
            f"{name}: kernel {kernel_wall:.3f}s, reference {reference_wall:.3f}s, "
            f"speedup {speedup:.2f}x, {len(kernel_schedule.assignments)} "
            f"assignments, {mismatches} mismatches"
        )
        if name in TARGET_SCHEDULERS and speedup < SPEEDUP_TARGET:
            shortfalls.append((name, speedup))

    result["mismatches"] = total_mismatches
    result["targets_met"] = not shortfalls

    from repro.perf import bench_provenance

    result["provenance"] = bench_provenance()
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if total_mismatches:
        print(
            f"ERROR: {total_mismatches} schedule mismatches between backends",
            file=sys.stderr,
        )
        return 1
    for name, speedup in shortfalls:
        print(
            f"WARNING: {name} speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGET:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
