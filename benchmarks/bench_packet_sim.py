#!/usr/bin/env python
"""Fluid packet-simulator benchmark (vectorized engine vs reference).

Standalone CLI (not a pytest bench): replays a 150-port Facebook-like
trace through the fluid packet simulator under both engines — the
struct-of-arrays :class:`~repro.sim.packet_vector.VectorPacketSimulator`
and the dict-based :class:`~repro.sim.packet_sim.ReferencePacketSimulator`
— for a Varys (SEBF + MADD) scenario and an Aalo (D-CLAS) scenario,
verifies the event sequences and CCT records are bitwise identical, and
writes the timing summary plus the packet layer's perf counters to
``BENCH_packet_sim.json`` at the repository root.

The Varys scenario uses a shuffle-heavy category mix (wide many-to-many
Coflows are where the array layout pays off most); the Aalo scenario
keeps the paper's Facebook mix.  Walls are min-of-``--repeats`` to damp
scheduler noise on loaded machines.

    PYTHONPATH=src python benchmarks/bench_packet_sim.py
    PYTHONPATH=src python benchmarks/bench_packet_sim.py --scenarios aalo --repeats 1
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

#: Minimum vector-over-reference speedup each scenario must sustain.
SPEEDUP_TARGETS = {"varys": 5.0, "aalo": 4.0}


def make_scenarios():
    """Benchmark scenarios: (allocator factory, trace config, bandwidth)."""
    from repro.sim.aalo import AaloAllocator
    from repro.sim.varys import VarysAllocator
    from repro.workloads.synthetic import CategoryMix, GeneratorConfig

    shuffle_mix = CategoryMix(
        one_to_one=0.1, one_to_many=0.1, many_to_one=0.2, many_to_many=0.6
    )
    return {
        "varys": {
            "allocator": VarysAllocator,
            "config": GeneratorConfig(
                num_ports=150,
                num_coflows=600,
                max_width=None,
                mean_interarrival=0.7,
                mix=shuffle_mix,
                seed=2016,
            ),
            "bandwidth_bps": 5e8,
        },
        "aalo": {
            "allocator": AaloAllocator,
            "config": GeneratorConfig(
                num_ports=150,
                num_coflows=526,
                max_width=None,
                mean_interarrival=0.68,
                seed=2016,
            ),
            "bandwidth_bps": 1e9,
        },
    }


def compare_runs(vector_sim, vector_report, reference_sim, reference_report) -> int:
    """Count event-sequence and CCT-record mismatches between the engines.

    Both engines advertise bitwise identity, so the comparison is exact
    equality — no tolerances.
    """
    mismatches = 0
    if vector_sim.event_times != reference_sim.event_times:
        paired = zip(vector_sim.event_times, reference_sim.event_times)
        mismatches += sum(1 for ours, theirs in paired if ours != theirs)
        mismatches += abs(
            len(vector_sim.event_times) - len(reference_sim.event_times)
        )
    if len(vector_report.records) != len(reference_report.records):
        mismatches += abs(len(vector_report.records) - len(reference_report.records))
    for ours, theirs in zip(vector_report.records, reference_report.records):
        if (
            ours.coflow_id != theirs.coflow_id
            or ours.completion_time != theirs.completion_time
            or ours.arrival_time != theirs.arrival_time
        ):
            mismatches += 1
    return mismatches


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scenarios",
        nargs="*",
        default=None,
        help="subset of scenarios to run (default: varys aalo)",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="timing repeats per engine; walls are the minimum",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_packet_sim.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")

    from repro.perf import packet_counters
    from repro.sim.packet_sim import ReferencePacketSimulator
    from repro.sim.packet_vector import VectorPacketSimulator
    from repro.workloads.synthetic import FacebookLikeTraceGenerator

    scenarios = make_scenarios()
    names = args.scenarios or list(scenarios)
    unknown = [name for name in names if name not in scenarios]
    if unknown:
        parser.error(f"unknown scenarios: {', '.join(unknown)}")

    result = {
        "bench": "packet_sim",
        "repeats": args.repeats,
        "speedup_targets": dict(SPEEDUP_TARGETS),
        "scenarios": {},
    }
    total_mismatches = 0
    shortfalls = []

    for name in names:
        scenario = scenarios[name]
        config = scenario["config"]
        bandwidth = scenario["bandwidth_bps"]
        trace = FacebookLikeTraceGenerator(config).generate()

        vector_walls, reference_walls = [], []
        vector_sim = vector_report = reference_sim = reference_report = None
        counters = None
        for _ in range(args.repeats):
            packet_counters.reset()
            start = time.perf_counter()
            vector_sim = VectorPacketSimulator(trace, scenario["allocator"](), bandwidth)
            vector_report = vector_sim.run()
            vector_walls.append(time.perf_counter() - start)
            counters = packet_counters.snapshot()["counts"]

            start = time.perf_counter()
            reference_sim = ReferencePacketSimulator(
                trace, scenario["allocator"](), bandwidth
            )
            reference_report = reference_sim.run()
            reference_walls.append(time.perf_counter() - start)

        vector_wall = min(vector_walls)
        reference_wall = min(reference_walls)
        mismatches = compare_runs(
            vector_sim, vector_report, reference_sim, reference_report
        )
        total_mismatches += mismatches
        speedup = reference_wall / vector_wall if vector_wall > 0 else None
        result["scenarios"][name] = {
            "config": {
                "ports": config.num_ports,
                "coflows": config.num_coflows,
                "mean_interarrival": config.mean_interarrival,
                "bandwidth_bps": bandwidth,
                "seed": config.seed,
                "mix": {
                    "one_to_one": config.mix.one_to_one,
                    "one_to_many": config.mix.one_to_many,
                    "many_to_one": config.mix.many_to_one,
                    "many_to_many": config.mix.many_to_many,
                },
            },
            "vector_wall_s": vector_wall,
            "reference_wall_s": reference_wall,
            "speedup": speedup,
            "events": len(vector_sim.event_times),
            "records": len(vector_report.records),
            "mismatches": mismatches,
            "packet_counters": counters,
        }
        print(
            f"{name}: vector {vector_wall:.3f}s, reference {reference_wall:.3f}s, "
            f"speedup {speedup:.2f}x, {len(vector_sim.event_times)} events, "
            f"{mismatches} mismatches"
        )
        if speedup < SPEEDUP_TARGETS[name]:
            shortfalls.append((name, speedup))

    result["mismatches"] = total_mismatches
    result["targets_met"] = not shortfalls

    from repro.perf import bench_provenance

    result["provenance"] = bench_provenance()
    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")

    if total_mismatches:
        print(
            f"ERROR: {total_mismatches} event/record mismatches between engines",
            file=sys.stderr,
        )
        return 1
    for name, speedup in shortfalls:
        print(
            f"WARNING: {name} speedup {speedup:.2f}x below the "
            f"{SPEEDUP_TARGETS[name]:.0f}x target",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
