"""Table 3 — scheduler time complexity.

Paper:

    Edmond   TMS        Solstice        Sunflow
    O(N³)    O(N⁴·⁵)    O(N³ log² N)    O(|C|²)

The baselines' running time depends only on the fabric size ``N``; Sunflow
depends only on the Coflow's subflow count ``|C|``.  We measure both
effects: (a) per-scheduler wall time on one dense Coflow as ``N`` grows,
(b) Sunflow alone on a sparse Coflow in a huge fabric — it must be no
slower than in a tiny fabric, while the baselines degrade.
"""

import random
import time

import pytest

from repro.core.prt import PortReservationTable
from repro.core.sunflow import SunflowScheduler
from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.units import MS

from _utils import emit, header, run_once

DELTA = 10 * MS


def dense_demand(n, rng):
    return {
        (i, j): rng.uniform(0.05, 1.0) for i in range(n) for j in range(n)
    }


def sparse_demand(num_flows, num_ports, rng):
    demand = {}
    while len(demand) < num_flows:
        demand[(rng.randrange(num_ports), rng.randrange(num_ports))] = rng.uniform(
            0.05, 1.0
        )
    return demand


def time_of(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_table3_dense_scaling(benchmark):
    """All four schedulers on dense N×N Coflows, N ∈ {8, 16, 32}."""
    rng = random.Random(7)
    sizes = (8, 16, 32)
    schedulers = {
        "edmond": lambda d, n: EdmondScheduler().schedule(d, n),
        "tms": lambda d, n: TmsScheduler().schedule(d, n),
        "solstice": lambda d, n: SolsticeScheduler().schedule(d, n),
        "sunflow": lambda d, n: SunflowScheduler(delta=DELTA).schedule_demand(
            PortReservationTable(), 1, d
        ),
    }

    def measure():
        rows = {}
        for n in sizes:
            demand = dense_demand(n, rng)
            rows[n] = {
                name: time_of(lambda fn=fn, d=demand, n=n: fn(d, n))
                for name, fn in schedulers.items()
            }
        return rows

    rows = run_once(benchmark, measure)

    header("Table 3: scheduler runtime on dense N×N Coflows (seconds)")
    emit(f"{'N':>4} {'edmond':>9} {'tms':>9} {'solstice':>9} {'sunflow':>9}")
    for n, timings in rows.items():
        emit(
            f"{n:>4} {timings['edmond']:>9.4f} {timings['tms']:>9.4f} "
            f"{timings['solstice']:>9.4f} {timings['sunflow']:>9.4f}"
        )
    emit()
    emit("paper complexity: Edmond O(N^3), TMS O(N^4.5), "
         "Solstice O(N^3 log^2 N), Sunflow O(|C|^2)")

    # Everyone gets slower with N on dense demand (|C| = N² for Sunflow).
    for name in ("edmond", "tms", "solstice", "sunflow"):
        assert rows[32][name] > rows[8][name]


def test_table3_sunflow_independent_of_fabric_size(benchmark):
    """Sunflow's cost tracks |C|, not N: the same 64-flow Coflow costs the
    same in a 16-port and a 4096-port fabric, while Solstice degrades."""
    rng = random.Random(11)
    small_fabric = sparse_demand(64, 16, rng)
    huge_fabric = {
        (src * 256, dst * 256): p for (src, dst), p in small_fabric.items()
    }

    def measure():
        sunflow = SunflowScheduler(delta=DELTA)
        times = {}
        times["sunflow_small"] = time_of(
            lambda: sunflow.schedule_demand(PortReservationTable(), 1, small_fabric)
        )
        times["sunflow_huge"] = time_of(
            lambda: sunflow.schedule_demand(PortReservationTable(), 1, huge_fabric)
        )
        return times

    times = run_once(benchmark, measure)

    header("Table 3 (cont.): Sunflow cost is O(|C|²), independent of N")
    emit(f"  64-flow coflow, 16-port fabric:   {times['sunflow_small'] * 1e3:8.2f} ms")
    emit(f"  64-flow coflow, 4096-port fabric: {times['sunflow_huge'] * 1e3:8.2f} ms")
    assert times["sunflow_huge"] < times["sunflow_small"] * 10 + 0.01
