#!/usr/bin/env python
"""End-to-end trace-replay benchmark (incremental vs full replanning).

Standalone CLI (not a pytest bench): replays a synthetic Facebook-like
trace through the inter-Coflow simulator in both replanner modes, verifies
the results are identical per Coflow, and writes the timing summary to
``BENCH_trace_replay.json`` at the repository root.

    PYTHONPATH=src python benchmarks/bench_trace_replay.py
    PYTHONPATH=src python benchmarks/bench_trace_replay.py --coflows 120 --max-width 30
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def _compare_backends(args, run_trace_replay) -> dict:
    """Replay the same trace under the python and native planner backends.

    Both runs keep the full-replan validation on, so each backend's
    incremental/full mismatch count is enforced to 0; on top of that the
    two backends' perf-counter counts (events, plans computed,
    reservations made, ...) must be identical — the planners are bitwise
    twins, so any divergence is a kernel bug, not noise.
    """
    from repro.core.sunflow import native_planner_available
    from repro.kernels import use_backend

    if not native_planner_available():
        return {
            "native_available": False,
            "note": "repro._native is not built; skipped "
            "(python setup.py build_ext --inplace)",
        }

    comparison: dict = {"native_available": True}
    counts = {}
    for backend in ("python", "native"):
        with use_backend(backend):
            run = run_trace_replay(
                num_coflows=args.coflows,
                num_ports=args.ports,
                max_width=args.max_width,
                seed=args.seed,
                compare_full=True,
            )
        counts[backend] = run["counters"]["counts"]
        comparison[backend] = {
            "wall_s": run["wall_s"],
            "plan_timer_s": run["counters"]["timers_s"]["plan"],
            "plan_phases_s": run["plan_phases_s"],
            "full_replan_wall_s": run["full_replan_wall_s"],
            "mismatches": run["mismatches"],
        }
        if run["mismatches"]:
            comparison["error"] = (
                f"{backend} backend: incremental and full replanning disagree"
            )
            return comparison
    comparison["counters_identical"] = counts["python"] == counts["native"]
    if not comparison["counters_identical"]:
        diff = {
            key: (counts["python"].get(key), counts["native"].get(key))
            for key in set(counts["python"]) | set(counts["native"])
            if counts["python"].get(key) != counts["native"].get(key)
        }
        comparison["counter_diff"] = diff
        comparison["error"] = "python and native backends diverged: " + ", ".join(
            f"{key} {py_val} vs {nat_val}" for key, (py_val, nat_val) in diff.items()
        )
        return comparison
    py_plan = comparison["python"]["plan_timer_s"]
    nat_plan = comparison["native"]["plan_timer_s"]
    comparison["plan_speedup"] = py_plan / nat_plan if nat_plan > 0 else None
    comparison["wall_speedup"] = (
        comparison["python"]["wall_s"] / comparison["native"]["wall_s"]
        if comparison["native"]["wall_s"] > 0
        else None
    )
    return comparison


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coflows", type=int, default=500, help="trace length")
    parser.add_argument("--ports", type=int, default=150, help="switch radix")
    parser.add_argument(
        "--max-width",
        type=int,
        default=None,
        help="cap on Coflow width (default: unbounded, paper scale)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="trace seed")
    parser.add_argument(
        "--no-compare",
        action="store_true",
        help="skip the full-replan validation run (timing only)",
    )
    parser.add_argument(
        "--compare-backends",
        action="store_true",
        help="also replay under REPRO_KERNEL=python and REPRO_KERNEL=native "
        "and record wall + plan-timer for each (requires the repro._native "
        "extension; mismatches are enforced to 0 in both)",
    )
    parser.add_argument(
        "--baseline-s",
        type=float,
        default=None,
        help="wall seconds of a reference run (e.g. the pre-optimization "
        "replanner on the same machine and config) to record a speedup "
        "against",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_trace_replay.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)

    from repro.perf import bench_provenance
    from repro.perf.replay_bench import run_plan_cache_scenario, run_trace_replay

    result = run_trace_replay(
        num_coflows=args.coflows,
        num_ports=args.ports,
        max_width=args.max_width,
        seed=args.seed,
        compare_full=not args.no_compare,
    )
    result["provenance"] = bench_provenance()

    if args.compare_backends:
        comparison = _compare_backends(args, run_trace_replay)
        result["backend_comparison"] = comparison
        if comparison.get("error"):
            print(f"ERROR: {comparison['error']}", file=sys.stderr)
            args.output.write_text(json.dumps(result, indent=2) + "\n")
            return 1

    result["plan_cache_scenario"] = scenario = run_plan_cache_scenario()
    # Surface the convoy scenario's hit rates next to the headline
    # replay's so the summary shows recurring-workload cache behavior in
    # both replanner modes at the top level.
    result["convoy_plan_cache_hit_rate"] = scenario["full_replan"][
        "plan_cache_hit_rate"
    ]
    result["convoy_incremental_plan_cache_hit_rate"] = scenario["incremental"][
        "plan_cache_hit_rate"
    ]

    if args.baseline_s:
        result["baseline_wall_s"] = args.baseline_s
        result["speedup_vs_baseline"] = args.baseline_s / result["wall_s"]

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"incremental: {result['wall_s']:.2f}s over {result['events']} events, "
        f"{result['coflows']} coflows"
    )
    phases = result.get("plan_phases_s", {})
    if phases:
        print(
            "plan phases: "
            + ", ".join(f"{name} {seconds:.3f}s" for name, seconds in phases.items())
        )
    hit_rate = result["incremental_plan_cache_hit_rate"]
    skips_only = " (skips only)" if result["incremental_plan_cache_skips_only"] else ""
    kept = result.get("plans_kept_per_computed")
    print(
        "reuse: "
        f"incremental plan-cache hit rate {hit_rate:.1%}{skips_only}, "
        f"kept/computed {kept if kept is None else f'{kept:.2f}'}, "
        f"{result.get('plans_transformed', 0)} transformed, "
        f"{result.get('plans_reused', 0)} replayed"
    )
    if "backend_comparison" in result and result["backend_comparison"].get(
        "native_available"
    ):
        comparison = result["backend_comparison"]
        print(
            "backend comparison: "
            f"python plan {comparison['python']['plan_timer_s']:.2f}s / "
            f"wall {comparison['python']['wall_s']:.2f}s, "
            f"native plan {comparison['native']['plan_timer_s']:.2f}s / "
            f"wall {comparison['native']['wall_s']:.2f}s "
            f"(plan speedup {comparison['plan_speedup']:.2f}x, 0 mismatches)"
        )
    if "full_replan_wall_s" in result:
        print(
            f"full replan: {result['full_replan_wall_s']:.2f}s "
            f"(speedup {result['speedup_vs_full']:.2f}x, "
            f"{result['mismatches']} mismatches)"
        )
        if result["mismatches"]:
            print("ERROR: incremental and full replanning disagree", file=sys.stderr)
            return 1
    cache_rate = scenario["full_replan"]["plan_cache_hit_rate"]
    inc_rate = scenario["incremental"]["plan_cache_hit_rate"]
    print(
        "plan-cache scenario (recurring convoy): "
        f"full-replan hit rate {cache_rate:.1%}, "
        f"incremental hit rate {inc_rate:.1%} "
        f"({scenario['incremental']['plan_cache_hits']} hits, "
        f"{scenario['incremental']['plan_cache_skips']} first-sight skips)"
    )
    if not cache_rate or cache_rate <= 0:
        print(
            "ERROR: recurring-Coflow scenario produced no plan-cache hits",
            file=sys.stderr,
        )
        return 1
    if not inc_rate or inc_rate < 0.80:
        print(
            "ERROR: incremental replanner plan-cache hit rate below 80% "
            "on the recurring-Coflow scenario",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
