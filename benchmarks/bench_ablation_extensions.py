"""§6 extensions ablation — quantized scheduling and hybrid offload.

The paper's Discussion sketches two engineering levers this repo
implements and quantifies:

* **Quantization** — round subflow processing times up to a grid to prune
  circuit-release events.  We measure the planning-time saving and the
  CCT cost as the quantum grows.
* **Hybrid offload** — carry small flows on a parallel low-rate packet
  network (REACToR).  Offload pays only when ``p < δ·φ/(1-φ)``; with the
  default 10 ms 3D-MEMS switch and ≥1 MB flows, keeping everything
  optical wins — worth knowing before provisioning a packet overlay.
"""

import time

import pytest

from repro.core.prt import PortReservationTable
from repro.core.sunflow import SunflowScheduler
from repro.sim import (
    HybridConfig,
    mean,
    simulate_intra_hybrid,
    simulate_intra_sunflow,
)
from repro.units import MB, MS

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA


def test_ablation_quantization(benchmark):
    """Quantization speeds up the *literal* Algorithm 1 (the paper's
    suggestion: coincident release times prune the rescan loop); the
    event-driven rewrite in this library already gets that speedup without
    the CCT cost, so both are measured on a dense 30×30 Coflow."""
    import random

    rng = random.Random(1)
    demand = {(i, j): rng.uniform(0.05, 2.0) for i in range(30) for j in range(30)}

    def compute():
        rows = []
        for quantum in (None, 100 * MS, 500 * MS):
            scheduler = SunflowScheduler(delta=DELTA, quantum=quantum)
            start = time.perf_counter()
            literal = scheduler.schedule_demand_reference(
                PortReservationTable(), 1, dict(demand)
            )
            literal_time = time.perf_counter() - start
            start = time.perf_counter()
            fast = scheduler.schedule_demand(PortReservationTable(), 1, dict(demand))
            fast_time = time.perf_counter() - start
            rows.append((quantum, literal_time, fast_time, fast.makespan))
        return rows

    rows = run_once(benchmark, compute)
    exact_literal, exact_cct = rows[0][1], rows[0][3]

    header("§6 ablation: quantized scheduling (dense 900-flow Coflow)")
    emit(f"{'quantum':>9} {'literal alg.1':>14} {'speedup':>8} "
         f"{'event-driven':>13} {'CCT cost':>9}")
    for quantum, literal_time, fast_time, makespan in rows:
        label = "exact" if quantum is None else f"{quantum * 1000:.0f}ms"
        emit(
            f"{label:>9} {literal_time:>13.3f}s {exact_literal / literal_time:>7.1f}x "
            f"{fast_time:>12.3f}s {makespan / exact_cct:>8.3f}x"
        )
    emit()
    emit("coarser grids prune the literal loop's release events; the")
    emit("event-driven scheduler needs no approximation to stay fast.")

    # Quantization accelerates the literal transcription and can only
    # lengthen the schedule.
    assert rows[-1][1] < exact_literal
    assert all(makespan >= exact_cct - 1e-9 for _, _, _, makespan in rows)
    # The event-driven planner beats the literal loop even unquantized.
    assert rows[0][2] < rows[0][1]


def test_ablation_hybrid_offload(benchmark, trace, sunflow_intra_1g):
    def compute():
        rows = []
        for threshold_mb, fraction in ((0, 0.1), (2, 0.1), (10, 0.1), (10, 0.25)):
            config = HybridConfig(
                size_threshold_bytes=threshold_mb * MB,
                packet_bandwidth_fraction=fraction,
            )
            report = simulate_intra_hybrid(trace, config, BANDWIDTH, DELTA)
            rows.append((threshold_mb, fraction, report.average_cct()))
        return rows

    rows = run_once(benchmark, compute)
    pure_cct = rows[0][2]

    header("§6 ablation: hybrid small-flow offload (intra mode)")
    emit(f"{'threshold':>10} {'pkt rate':>9} {'avg CCT':>9} {'vs pure':>8}")
    for threshold_mb, fraction, avg_cct in rows:
        emit(
            f"{threshold_mb:>8}MB {fraction * 100:>8.0f}% {avg_cct:>8.2f}s "
            f"{avg_cct / pure_cct:>7.3f}x"
        )
    emit()
    emit("offload pays only for flows with p < δ·φ/(1-φ) ≈ "
         f"{DELTA * 0.1 / 0.9 * BANDWIDTH / 8 / MB:.2f} MB at 10% rate —")
    emit("below the trace's 1 MB floor, so the pure OCS wins at δ = 10 ms.")

    # The zero-threshold row is exactly pure Sunflow.
    assert rows[0][2] == pytest.approx(sunflow_intra_1g.average_cct(), rel=1e-9)
