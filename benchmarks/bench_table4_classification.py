"""Table 4 — Coflows classified by sender-to-receiver ratio.

Paper (Facebook trace):

    Category   O2O    O2M    M2O    M2M
    Coflow %   23.4    9.9   40.1   26.6
    Bytes  %  0.005  0.024  0.028 99.943
"""

from repro.analysis import classify
from repro.core.coflow import CoflowCategory

from _utils import emit, header, run_once

PAPER_COFLOW_PERCENT = {
    CoflowCategory.ONE_TO_ONE: 23.4,
    CoflowCategory.ONE_TO_MANY: 9.9,
    CoflowCategory.MANY_TO_ONE: 40.1,
    CoflowCategory.MANY_TO_MANY: 26.6,
}
PAPER_BYTES_PERCENT = {
    CoflowCategory.ONE_TO_ONE: 0.005,
    CoflowCategory.ONE_TO_MANY: 0.024,
    CoflowCategory.MANY_TO_ONE: 0.028,
    CoflowCategory.MANY_TO_MANY: 99.943,
}


def test_table4_classification(benchmark, trace):
    breakdown = run_once(benchmark, lambda: classify(trace))

    header("Table 4: Coflow classification by sender-to-receiver ratio")
    emit(f"{'category':>10} {'coflow% paper':>14} {'coflow% ours':>13} "
         f"{'bytes% paper':>13} {'bytes% ours':>12}")
    for category in CoflowCategory:
        emit(
            f"{category.value:>10} {PAPER_COFLOW_PERCENT[category]:>14.1f} "
            f"{breakdown.coflow_percent(category):>13.1f} "
            f"{PAPER_BYTES_PERCENT[category]:>13.3f} "
            f"{breakdown.bytes_percent(category):>12.3f}"
        )

    # The generator targets the published mix; assert the shape holds.
    for category in CoflowCategory:
        assert abs(
            breakdown.coflow_percent(category) - PAPER_COFLOW_PERCENT[category]
        ) < 3.0
    assert breakdown.bytes_percent(CoflowCategory.MANY_TO_MANY) > 98.0
