"""Figure 8 — inter-Coflow average CCT vs network idleness.

Paper: Sunflow's average CCT normalized to Varys is 0.98 / 1.00 / 1.01 at
12 % (original) / 20 % / 40 % idleness, but degrades to 1.24 and 3.27 at
the underutilized 81 % / 98 % points (B = 10 / 100 Gbps); against Aalo the
ratios are 0.48 / 0.60 / 0.83 at moderate load and 0.95 / 2.40 when idle.

We reproduce the moderate-load points by byte-scaling the trace to each
idleness target at 1 Gbps (preserving structure, §5.4), and the
underutilized points by raising B on the original trace.
"""

import pytest

from repro.analysis import network_idleness
from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    simulate_inter_sunflow,
    simulate_packet,
)
from repro.units import GBPS
from repro.workloads import scale_to_idleness

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

#: (label, target idleness at 1 Gbps or None to keep the trace, bandwidth)
POINTS = [
    ("original", None, 1 * GBPS),
    ("20% idle", 0.20, 1 * GBPS),
    ("40% idle", 0.40, 1 * GBPS),
    ("10 Gbps", None, 10 * GBPS),
    ("100 Gbps", None, 100 * GBPS),
]
PAPER_VS_VARYS = {"original": 0.98, "20% idle": 1.00, "40% idle": 1.00,
                  "10 Gbps": 1.24, "100 Gbps": 3.27}
PAPER_VS_AALO = {"original": 0.48, "20% idle": 0.60, "40% idle": 0.83,
                 "10 Gbps": 0.95, "100 Gbps": 2.40}


@pytest.fixture(scope="module")
def sweep(trace, sunflow_inter_1g, report_cache):
    def run():
        rows = []
        for label, target, bandwidth in POINTS:
            workload = trace
            if target is not None:
                workload = scale_to_idleness(trace, bandwidth, target)
            idleness = network_idleness(workload, bandwidth)
            if label == "original" and bandwidth == BANDWIDTH:
                sunflow = sunflow_inter_1g
            else:
                sunflow = simulate_inter_sunflow(workload, bandwidth, DELTA)
            varys = simulate_packet(workload, VarysAllocator(), bandwidth)
            aalo = simulate_packet(workload, AaloAllocator(), bandwidth)
            rows.append(
                {
                    "label": label,
                    "idleness": idleness,
                    "sunflow": sunflow.average_cct(),
                    "varys": varys.average_cct(),
                    "aalo": aalo.average_cct(),
                }
            )
        return rows

    return run


def test_fig8_average_cct_vs_idleness(benchmark, sweep):
    rows = run_once(benchmark, sweep)

    header("Figure 8: average CCT normalized to Varys / Aalo vs idleness")
    emit(f"{'setting':>10} {'idle%':>6} {'vsVarys paper':>14} {'vsVarys ours':>13} "
         f"{'vsAalo paper':>13} {'vsAalo ours':>12}")
    for row in rows:
        vs_varys = row["sunflow"] / row["varys"]
        vs_aalo = row["sunflow"] / row["aalo"]
        emit(
            f"{row['label']:>10} {100 * row['idleness']:>6.0f} "
            f"{PAPER_VS_VARYS[row['label']]:>14.2f} {vs_varys:>13.2f} "
            f"{PAPER_VS_AALO[row['label']]:>13.2f} {vs_aalo:>12.2f}"
        )

    by_label = {row["label"]: row for row in rows}
    # Moderate load: Sunflow comparable to Varys and no worse than Aalo.
    for label in ("original", "20% idle", "40% idle"):
        row = by_label[label]
        assert row["sunflow"] / row["varys"] < 1.25
        assert row["sunflow"] / row["aalo"] < 1.15
    # Underutilized network: circuit overhead shows, Sunflow falls behind.
    hundred = by_label["100 Gbps"]
    assert hundred["sunflow"] / hundred["varys"] > by_label["original"][
        "sunflow"
    ] / by_label["original"]["varys"]
