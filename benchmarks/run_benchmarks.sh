#!/bin/sh
# Entry point for the repository's performance benchmarks.
#
# Runs the end-to-end trace-replay benchmark (incremental vs full
# inter-Coflow replanning) at paper scale and the sweep-engine benchmark
# (serial vs parallel vs cache-warm over a δ × seed grid), leaving the
# summaries in BENCH_trace_replay.json and BENCH_sweep_engine.json at the
# repository root.  Extra arguments are forwarded to the trace-replay
# bench, e.g.:
#
#   benchmarks/run_benchmarks.sh --coflows 120 --max-width 30
#
# The paper-figure benches (bench_fig*.py etc.) stay on pytest-benchmark:
#
#   PYTHONPATH=src python -m pytest benchmarks/ -q
#
# and the δ-sensitivity figures accept REPRO_SWEEP_WORKERS=N /
# REPRO_SWEEP_CACHE=dir to parallelize and cache their sweep grids.

set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_trace_replay.py "$@"
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_sweep_engine.py
