#!/bin/sh
# Entry point for the repository's performance benchmarks.
#
# Runs the end-to-end trace-replay benchmark (incremental vs full
# inter-Coflow replanning) at paper scale, the sweep-engine benchmark
# (serial vs parallel vs cache-warm over a δ × seed grid), the
# scheduler-kernel benchmark (numpy kernels vs pure-Python references),
# the packet-simulator benchmark (vectorized engine vs reference), and
# the K-core fabric benchmark (CCT vs lower bound over K ∈ {1,2,4,8}
# with bitwise differentials), and the streaming-replay benchmark
# (bounded-memory engine with a hard peak-RSS ceiling and the
# 500-coflow byte-identity check; REPRO_STREAM_COFLOWS shrinks it for
# CI), leaving the summaries in BENCH_trace_replay.json,
# BENCH_streaming.json, BENCH_sweep_engine.json,
# BENCH_schedulers.json, BENCH_packet_sim.json, and
# BENCH_multicore.json at the repository root.  Extra arguments are
# forwarded to the trace-replay bench, e.g.:
#
#   benchmarks/run_benchmarks.sh --coflows 120 --max-width 30
#
# The paper-figure benches (bench_fig*.py etc.) stay on pytest-benchmark:
#
#   PYTHONPATH=src python -m pytest benchmarks/ -q
#
# and the δ-sensitivity figures accept REPRO_SWEEP_WORKERS=N /
# REPRO_SWEEP_CACHE=dir to parallelize and cache their sweep grids.

set -e
cd "$(dirname "$0")/.."

# When the compiled planner (repro._native) is built, run the replay
# bench under REPRO_KERNEL=native with the per-backend comparison on:
# the committed numbers then track the fastest supported configuration
# and the regression smoke below compares native against native.  An
# explicit REPRO_KERNEL in the environment wins.
replay_kernel="${REPRO_KERNEL:-}"
replay_flags=""
if [ -z "$replay_kernel" ] && PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
        python -c "import repro._native" >/dev/null 2>&1; then
    replay_kernel="native"
    replay_flags="--compare-backends"
fi

# Perf smoke: remember the committed replay wall before the bench
# overwrites BENCH_trace_replay.json, then warn (non-fatally) if the
# fresh run regressed by more than 25%.  Machine-to-machine variance is
# larger than that, so this only flags regressions against a baseline
# produced on the same machine — and only when the committed run used
# the same planner backend (a native run vs a pure-Python baseline is a
# 2× "improvement" that says nothing about regressions).
baseline_wall=""
if [ -f BENCH_trace_replay.json ]; then
    baseline_wall=$(python - "$replay_kernel" <<'EOF'
import json, sys
data = json.load(open("BENCH_trace_replay.json"))
expected = "native" if sys.argv[1] == "native" else "python"
committed = data.get("provenance", {}).get("planner_backend", "python")
print(data.get("wall_s", "") if committed == expected else "")
EOF
    )
fi
# A custom --output (or non-default trace config) diverts the summary
# away from the committed file, so the smoke comparison below would be
# apples-to-oranges — skip it.
if [ "$#" -gt 0 ]; then
    baseline_wall=""
fi

REPRO_KERNEL="$replay_kernel" PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_trace_replay.py $replay_flags "$@"

if [ -n "$baseline_wall" ]; then
    python - "$baseline_wall" <<'EOF'
import json, sys
baseline = float(sys.argv[1])
wall = json.load(open("BENCH_trace_replay.json"))["wall_s"]
ratio = wall / baseline if baseline > 0 else 0.0
if ratio > 1.25:
    print(
        f"WARNING: trace replay took {wall:.2f}s vs committed baseline "
        f"{baseline:.2f}s ({ratio:.2f}x) — possible performance regression",
        file=sys.stderr,
    )
else:
    print(f"perf smoke: replay wall {wall:.2f}s vs baseline {baseline:.2f}s ({ratio:.2f}x)")
EOF
fi

# Streaming replay: the bench itself exits nonzero on any divergence
# from the in-memory engine or a sketch-accuracy violation; on top of
# that, same perf-smoke pattern as the replay bench.  The comparison
# only makes sense at the committed scale, so REPRO_STREAM_COFLOWS
# (the CI shrink knob) skips it.
streaming_baseline=""
if [ -f BENCH_streaming.json ] && [ -z "${REPRO_STREAM_COFLOWS:-}" ]; then
    streaming_baseline=$(python -c "import json; print(json.load(open('BENCH_streaming.json')).get('wall_s', ''))")
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_streaming.py --assert-peak-rss-mb 256

if [ -n "$streaming_baseline" ]; then
    python - "$streaming_baseline" <<'EOF'
import json, sys
baseline = float(sys.argv[1])
wall = json.load(open("BENCH_streaming.json"))["wall_s"]
ratio = wall / baseline if baseline > 0 else 0.0
if ratio > 1.25:
    print(
        f"WARNING: streaming replay took {wall:.2f}s vs committed baseline "
        f"{baseline:.2f}s ({ratio:.2f}x) — possible performance regression",
        file=sys.stderr,
    )
else:
    print(f"perf smoke: streaming replay wall {wall:.2f}s vs baseline {baseline:.2f}s ({ratio:.2f}x)")
EOF
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_sweep_engine.py

# Scheduler kernels: same perf-smoke pattern as the replay bench —
# remember the committed kernel walls, rerun, warn (non-fatally) past 25%.
sched_baseline=""
if [ -f BENCH_schedulers.json ]; then
    sched_baseline=$(python -c "import json; d = json.load(open('BENCH_schedulers.json')); print(sum(s['kernel_wall_s'] for s in d['schedulers'].values()))")
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_schedulers.py

if [ -n "$sched_baseline" ]; then
    python - "$sched_baseline" <<'EOF'
import json, sys
baseline = float(sys.argv[1])
data = json.load(open("BENCH_schedulers.json"))
wall = sum(s["kernel_wall_s"] for s in data["schedulers"].values())
ratio = wall / baseline if baseline > 0 else 0.0
if ratio > 1.25:
    print(
        f"WARNING: scheduler kernels took {wall:.2f}s vs committed baseline "
        f"{baseline:.2f}s ({ratio:.2f}x) — possible performance regression",
        file=sys.stderr,
    )
else:
    print(f"perf smoke: scheduler kernel wall {wall:.2f}s vs baseline {baseline:.2f}s ({ratio:.2f}x)")
EOF
fi

# Packet simulator: same perf-smoke pattern — remember the committed
# vectorized walls, rerun, warn (non-fatally) past 25%.
packet_baseline=""
if [ -f BENCH_packet_sim.json ]; then
    packet_baseline=$(python -c "import json; d = json.load(open('BENCH_packet_sim.json')); print(sum(s['vector_wall_s'] for s in d['scenarios'].values()))")
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_packet_sim.py

if [ -n "$packet_baseline" ]; then
    python - "$packet_baseline" <<'EOF'
import json, sys
baseline = float(sys.argv[1])
data = json.load(open("BENCH_packet_sim.json"))
wall = sum(s["vector_wall_s"] for s in data["scenarios"].values())
ratio = wall / baseline if baseline > 0 else 0.0
if ratio > 1.25:
    print(
        f"WARNING: packet simulator took {wall:.2f}s vs committed baseline "
        f"{baseline:.2f}s ({ratio:.2f}x) — possible performance regression",
        file=sys.stderr,
    )
else:
    print(f"perf smoke: packet simulator wall {wall:.2f}s vs baseline {baseline:.2f}s ({ratio:.2f}x)")
EOF
fi

# K-core fabric: same perf-smoke pattern — remember the committed sweep
# wall, rerun (the bench itself exits nonzero on any differential
# mismatch), warn (non-fatally) past 25%.
multicore_baseline=""
if [ -f BENCH_multicore.json ]; then
    multicore_baseline=$(python -c "import json; print(json.load(open('BENCH_multicore.json')).get('wall_s', ''))")
fi

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_multicore.py

if [ -n "$multicore_baseline" ]; then
    python - "$multicore_baseline" <<'EOF'
import json, sys
baseline = float(sys.argv[1])
wall = json.load(open("BENCH_multicore.json"))["wall_s"]
ratio = wall / baseline if baseline > 0 else 0.0
if ratio > 1.25:
    print(
        f"WARNING: K-core sweep took {wall:.2f}s vs committed baseline "
        f"{baseline:.2f}s ({ratio:.2f}x) — possible performance regression",
        file=sys.stderr,
    )
else:
    print(f"perf smoke: K-core sweep wall {wall:.2f}s vs baseline {baseline:.2f}s ({ratio:.2f}x)")
EOF
fi
