#!/bin/sh
# Entry point for the repository's performance benchmarks.
#
# Runs the end-to-end trace-replay benchmark (incremental vs full
# inter-Coflow replanning) at paper scale and leaves the summary in
# BENCH_trace_replay.json at the repository root.  Extra arguments are
# forwarded, e.g.:
#
#   benchmarks/run_benchmarks.sh --coflows 120 --max-width 30
#
# The paper-figure benches (bench_fig*.py etc.) stay on pytest-benchmark:
#
#   PYTHONPATH=src python -m pytest benchmarks/ -q

set -e
cd "$(dirname "$0")/.."
PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" \
    python benchmarks/bench_trace_replay.py "$@"
