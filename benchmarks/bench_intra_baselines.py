"""§5.2 baseline comparison — Solstice vs TMS vs Edmond on intra-Coflow CCT.

Paper: "on average, Solstice services a Coflow more than 2× faster than
TMS and more than 6× faster than Edmond", which is why only Solstice is
carried into the main intra-Coflow comparison.
"""

from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import mean, simulate_intra_assignment

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

PAPER = {"tms": 2.0, "edmond": 6.0}


def test_intra_baseline_ordering(benchmark, trace, solstice_intra_1g):
    def compute():
        solstice = solstice_intra_1g.by_id()
        out = {}
        for scheduler in (TmsScheduler(), EdmondScheduler()):
            report = simulate_intra_assignment(trace, scheduler, BANDWIDTH, DELTA)
            ratios = [
                report.by_id()[cid].cct / solstice[cid].cct for cid in solstice
            ]
            out[scheduler.name] = mean(ratios)
        return out

    ratios = run_once(benchmark, compute)

    header("§5.2: average per-Coflow CCT relative to Solstice (intra mode)")
    emit(f"{'scheduler':>10} {'paper (>)':>10} {'ours':>7}")
    emit(f"{'tms':>10} {PAPER['tms']:>10.1f} {ratios['tms']:>7.2f}")
    emit(f"{'edmond':>10} {PAPER['edmond']:>10.1f} {ratios['edmond']:>7.2f}")

    # Ordering: Solstice < TMS < Edmond.  (Absolute factors depend on the
    # trace's flow-size mix; the synthetic trace preserves the ordering and
    # the order of magnitude.)
    assert ratios["tms"] > 1.2
    assert ratios["edmond"] > ratios["tms"]
