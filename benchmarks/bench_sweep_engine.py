#!/usr/bin/env python
"""Sweep-engine benchmark: serial vs parallel vs cache-warm.

Standalone CLI (not a pytest bench): runs the same δ × seed grid of
inter-Coflow replays three ways —

1. **serial** (``workers=1``) into a fresh content-hash cache,
2. **parallel** (``--workers``, default 4) into a separate fresh cache,
3. **cache-warm** (``--workers``) against the serial run's cache, which
   must serve every cell without recomputing anything —

verifies the per-cell result payloads are byte-identical across all
three runs, and writes the timing summary to ``BENCH_sweep_engine.json``
at the repository root.

    PYTHONPATH=src python benchmarks/bench_sweep_engine.py
    PYTHONPATH=src python benchmarks/bench_sweep_engine.py --coflows 200 --workers 8

Parallel speedup is bounded by the machine: the JSON records
``cpu_count`` next to the measured speedup so a 1-core container's
numbers aren't mistaken for an engine regression.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import shutil
import sys
import tempfile
import time


def run_grid(grid, workers, cache_dir):
    from repro.sweep import run_sweep

    start = time.perf_counter()
    result = run_sweep(grid, workers=workers, cache_dir=cache_dir)
    return result, time.perf_counter() - start


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coflows", type=int, default=120, help="trace length")
    parser.add_argument("--ports", type=int, default=150, help="switch radix")
    parser.add_argument("--max-width", type=int, default=30, help="Coflow width cap")
    parser.add_argument(
        "--workers", type=int, default=4, help="pool size for the parallel run"
    )
    parser.add_argument(
        "--seeds",
        type=int,
        nargs="+",
        default=[1, 2, 3, 4],
        help="trace seeds (one grid axis)",
    )
    parser.add_argument(
        "--cache-root",
        type=pathlib.Path,
        default=None,
        help="keep the result caches here (default: a temp dir, deleted)",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_sweep_engine.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)

    from repro.api import NetworkSpec, SimulationSpec, TraceSpec
    from repro.sweep import SweepSpec
    from repro.units import GBPS, MS

    grid = SweepSpec(
        name="sweep-engine-bench",
        base=SimulationSpec(
            trace=TraceSpec(
                kind="facebook",
                num_ports=args.ports,
                num_coflows=args.coflows,
                max_width=args.max_width,
                perturb=0.05,
            ),
            mode="inter",
            scheduler="sunflow",
            network=NetworkSpec(bandwidth_bps=1 * GBPS),
        ),
        axes={
            "network.delta": [100 * MS, 10 * MS, 1 * MS],
            "trace.seed": args.seeds,
        },
    )
    num_cells = len(grid.cells())

    cache_root = args.cache_root
    cleanup = cache_root is None
    if cleanup:
        cache_root = pathlib.Path(tempfile.mkdtemp(prefix="sweep-bench-"))
    try:
        serial, wall_serial = run_grid(grid, 1, cache_root / "serial")
        parallel, wall_parallel = run_grid(grid, args.workers, cache_root / "parallel")
        warm, wall_warm = run_grid(grid, args.workers, cache_root / "serial")
    finally:
        if cleanup:
            shutil.rmtree(cache_root, ignore_errors=True)

    failures = serial.failures() + parallel.failures() + warm.failures()
    mismatches = [
        outcome.cell_id
        for outcome, other, third in zip(
            serial.outcomes, parallel.outcomes, warm.outcomes
        )
        if not (
            outcome.result_bytes() == other.result_bytes() == third.result_bytes()
        )
    ]
    identical = not mismatches and not failures

    try:
        cpu_count = len(os.sched_getaffinity(0))
    except AttributeError:
        cpu_count = os.cpu_count() or 1

    summary = {
        "cells": num_cells,
        "workers": args.workers,
        "cpu_count": cpu_count,
        "wall_serial_s": wall_serial,
        "wall_parallel_s": wall_parallel,
        "wall_cache_warm_s": wall_warm,
        "speedup_parallel": wall_serial / wall_parallel,
        "speedup_cache_warm": wall_serial / wall_warm,
        "cache_hits_warm": warm.cache_hits,
        "identical": identical,
        "mismatched_cells": mismatches,
        "failed_cells": [outcome.cell_id for outcome in failures],
        "grid": {
            "coflows": args.coflows,
            "ports": args.ports,
            "max_width": args.max_width,
            "deltas_s": [100 * MS, 10 * MS, 1 * MS],
            "seeds": args.seeds,
        },
    }

    from repro.perf import bench_provenance

    summary["provenance"] = bench_provenance()

    args.output.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"{num_cells} cells: serial {wall_serial:.2f}s, "
        f"parallel({args.workers}w) {wall_parallel:.2f}s "
        f"({summary['speedup_parallel']:.2f}x), "
        f"cache-warm {wall_warm:.2f}s ({summary['speedup_cache_warm']:.2f}x, "
        f"{warm.cache_hits}/{num_cells} hits) on {cpu_count} CPU(s)"
    )
    if args.workers > cpu_count:
        print(
            f"note: only {cpu_count} CPU(s) available — parallel speedup is "
            "machine-bound, not an engine property"
        )
    if warm.cache_hits != num_cells:
        print(
            f"ERROR: cache-warm run recomputed "
            f"{num_cells - warm.cache_hits} cells",
            file=sys.stderr,
        )
        return 1
    if not identical:
        print(
            f"ERROR: results differ across runs "
            f"(mismatched={mismatches}, failed={summary['failed_cells']})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
