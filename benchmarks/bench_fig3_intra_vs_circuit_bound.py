"""Figure 3 — intra-Coflow CCT vs the circuit-switched lower bound T^c_L.

Paper (B = 1 Gbps, δ = 10 ms): Sunflow CCT/T^c_L is 1.03 on average and
1.18 at p95 (always < 2); Solstice is 1.48 / 4.74 (up to 10.63×).
Scaling B to 10 and 100 Gbps keeps Sunflow flat (1.03/1.24, 1.04/1.27)
while Solstice degrades to 2.30/10.06 and 3.17/13.83.
"""

import pytest

from repro.schedulers import SolsticeScheduler
from repro.sim import (
    mean,
    percentile,
    simulate_intra_assignment,
    simulate_intra_sunflow,
)
from repro.units import GBPS

from _utils import emit, header, run_once
from conftest import DELTA

PAPER = {
    # bandwidth Gbps -> {scheduler: (mean, p95)}
    1: {"sunflow": (1.03, 1.18), "solstice": (1.48, 4.74)},
    10: {"sunflow": (1.03, 1.24), "solstice": (2.30, 10.06)},
    100: {"sunflow": (1.04, 1.27), "solstice": (3.17, 13.83)},
}


@pytest.fixture(scope="module")
def reports(trace, report_cache, sunflow_intra_1g, solstice_intra_1g):
    """CCT/T^c_L reports for both schedulers across the B sweep."""
    results = {1: {"sunflow": sunflow_intra_1g, "solstice": solstice_intra_1g}}
    for gbps in (10, 100):
        bandwidth = gbps * GBPS
        results[gbps] = {
            "sunflow": simulate_intra_sunflow(trace, bandwidth, DELTA),
            "solstice": simulate_intra_assignment(
                trace, SolsticeScheduler(), bandwidth, DELTA
            ),
        }
    return results


def test_fig3_cct_over_circuit_bound(benchmark, reports):
    results = run_once(benchmark, lambda: {
        gbps: {
            name: [r.cct_over_circuit_lower for r in report.records]
            for name, report in by_name.items()
        }
        for gbps, by_name in reports.items()
    })

    header("Figure 3: intra-Coflow CCT / TcL across link rates (δ = 10 ms)")
    emit(f"{'B':>6} {'scheduler':>10} {'mean paper':>11} {'mean ours':>10} "
         f"{'p95 paper':>10} {'p95 ours':>9} {'max ours':>9}")
    for gbps, by_name in results.items():
        for name, ratios in by_name.items():
            paper_mean, paper_p95 = PAPER[gbps][name]
            emit(
                f"{gbps:>4}G {name:>11} {paper_mean:>11.2f} {mean(ratios):>10.2f} "
                f"{paper_p95:>10.2f} {percentile(ratios, 95):>9.2f} "
                f"{max(ratios):>9.2f}"
            )

    for gbps, by_name in results.items():
        sunflow = by_name["sunflow"]
        solstice = by_name["solstice"]
        # Lemma 1: Sunflow always below 2× the bound.
        assert max(sunflow) < 2.0
        # Sunflow near-optimal and flat across B; Solstice worse and
        # degrading as B grows (switching overhead dominates).
        assert mean(sunflow) < 1.2
        assert mean(solstice) > mean(sunflow)
    assert mean(results[100]["solstice"]) > mean(results[1]["solstice"])
