"""Figure 4 — CDF of CCT/T^c_L and CCT/T^p_L for many-to-many Coflows.

Paper (B = 1 Gbps, δ = 10 ms): Sunflow's M2M CCT/T^c_L is 1.10 mean /
1.46 p95 (bounded by 2); Solstice's is 2.81 / 7.70.  Sunflow's CCT/T^p_L
is bounded by 4.5 (Lemma 2 with α = 1.25).
"""

from repro.core.coflow import CoflowCategory
from repro.sim import mean, percentile
from repro.analysis import ecdf

from _utils import emit, header, run_once

PAPER = {
    "sunflow": {"tcl_mean": 1.10, "tcl_p95": 1.46},
    "solstice": {"tcl_mean": 2.81, "tcl_p95": 7.70},
}


def _m2m(report):
    return report.filtered(lambda r: r.category is CoflowCategory.MANY_TO_MANY)


def test_fig4_m2m_ratio_cdfs(benchmark, sunflow_intra_1g, solstice_intra_1g):
    def compute():
        out = {}
        for name, report in (
            ("sunflow", sunflow_intra_1g),
            ("solstice", solstice_intra_1g),
        ):
            m2m = _m2m(report)
            out[name] = {
                "tcl": [r.cct_over_circuit_lower for r in m2m.records],
                "tpl": [r.cct_over_packet_lower for r in m2m.records],
            }
        return out

    ratios = run_once(benchmark, compute)

    header("Figure 4: CCT over lower bounds, many-to-many Coflows")
    emit(f"{'scheduler':>10} {'ratio':>6} {'mean paper':>11} {'mean ours':>10} "
         f"{'p95 paper':>10} {'p95 ours':>9}")
    for name in ("sunflow", "solstice"):
        tcl = ratios[name]["tcl"]
        emit(
            f"{name:>10} {'TcL':>6} {PAPER[name]['tcl_mean']:>11.2f} "
            f"{mean(tcl):>10.2f} {PAPER[name]['tcl_p95']:>10.2f} "
            f"{percentile(tcl, 95):>9.2f}"
        )
        tpl = ratios[name]["tpl"]
        emit(
            f"{name:>10} {'TpL':>6} {'-':>11} {mean(tpl):>10.2f} "
            f"{'-':>10} {percentile(tpl, 95):>9.2f}"
        )

    emit()
    emit("CDF checkpoints (fraction of M2M coflows with ratio <= x):")
    for name in ("sunflow", "solstice"):
        points = ecdf(ratios[name]["tcl"])
        checkpoints = [1.5, 2.0, 4.0]
        fractions = []
        for threshold in checkpoints:
            below = [frac for value, frac in points if value <= threshold]
            fractions.append(below[-1] if below else 0.0)
        emit(
            f"  {name}: " + "  ".join(
                f"P(<= {t}) = {f:.2f}" for t, f in zip(checkpoints, fractions)
            )
        )

    # Shape assertions: Lemma 1 cap for Sunflow, Lemma 2 cap at 4.5 (the
    # trace's alpha = 1.25), Solstice strictly worse on M2M.
    assert max(ratios["sunflow"]["tcl"]) < 2.0
    assert max(ratios["sunflow"]["tpl"]) < 4.5
    assert mean(ratios["solstice"]["tcl"]) > mean(ratios["sunflow"]["tcl"])
