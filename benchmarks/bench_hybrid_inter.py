"""§6 extension — hybrid fabric (OCS + packet overlay) under real load.

The intra-mode ablation showed per-Coflow offload doesn't pay at 3D-MEMS
switching speeds.  Could contention change the calculus — mice riding the
overlay instead of wedging δ-setups into elephants' circuit time?  This
bench replays the trace with arrivals on pure-OCS vs hybrid fabrics and
reports average CCT for mice (< 10 MB Coflows) and elephants separately.
The measured answer is *no* at δ = 10 ms: shortest-Coflow-first already
protects mice on the pure fabric.
"""

from repro.sim import (
    HybridConfig,
    mean,
    simulate_inter_hybrid,
    simulate_inter_sunflow,
)
from repro.units import MB

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA


def test_hybrid_inter_replay(benchmark, trace, sunflow_inter_1g):
    mouse_ids = {c.coflow_id for c in trace if c.total_bytes < 10 * MB}

    def compute():
        rows = [("pure OCS", sunflow_inter_1g.by_id())]
        for threshold_mb, fraction in ((2, 0.1), (10, 0.1), (10, 0.25)):
            config = HybridConfig(
                size_threshold_bytes=threshold_mb * MB,
                packet_bandwidth_fraction=fraction,
            )
            label = f"offload <{threshold_mb}MB @{int(fraction * 100)}%"
            rows.append(
                (label, simulate_inter_hybrid(trace, config, BANDWIDTH, DELTA).by_id())
            )
        return rows

    rows = run_once(benchmark, compute)

    header("§6 extension: hybrid OCS + packet overlay, arrivals replay")
    emit(f"{'fabric':>20} {'avg CCT':>9} {'mice avg':>9} {'elephant avg':>13}")
    for label, by_id in rows:
        all_ccts = [record.cct for record in by_id.values()]
        mice = [by_id[cid].cct for cid in mouse_ids]
        elephants = [
            record.cct for cid, record in by_id.items() if cid not in mouse_ids
        ]
        emit(
            f"{label:>20} {mean(all_ccts):>8.2f}s {mean(mice):>8.2f}s "
            f"{mean(elephants):>12.2f}s"
        )
    emit()
    emit("finding: shortest-Coflow-first already serves mice promptly on the")
    emit("pure OCS (inter-Coflow preemption), so the overlay's rate penalty")
    emit("dominates — reinforcing the paper's thesis that a pure circuit")
    emit("fabric with Sunflow needs no packet crutch at these loads.")

    pure = rows[0][1]
    for label, by_id in rows[1:]:
        assert len(by_id) == len(pure)
    # Mice are already fast on the pure OCS; the overlay cannot beat the
    # full-rate circuits it replaces at 3D-MEMS switching speeds.
    pure_mice = mean([pure[cid].cct for cid in mouse_ids])
    for label, by_id in rows[1:]:
        assert mean([by_id[cid].cct for cid in mouse_ids]) >= pure_mice - 1e-9
