"""Figure 9 + §5.4 CCT-ratio metric — per-Coflow comparison at original load.

Paper (12 % idleness, B = 1 Gbps, δ = 10 ms):

* CCT-ratio metric: Sunflow is 1.87× (avg) / 2.52× (p95) of Varys and
  1.69× / 2.37× of Aalo — dominated by short Coflows where the absolute
  difference is tiny but the ratio is large.
* Short vs long split: short Coflows average 2.16× of Varys; long Coflows
  (most bytes) average 1.07× of Varys and 0.90× of Aalo.
* ΔCCT scatter: Coflows with small T^p_L finish slower under Sunflow
  (circuit setup), Coflows with large T^p_L can finish *faster* than
  Varys/Aalo (their residual-bandwidth and size-blind inefficiencies).
"""

import pytest

from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    mean,
    percentile,
    simulate_packet,
)
from repro.units import GBPS

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

PAPER = {
    "varys": {"avg": 1.87, "p95": 2.52, "short_avg": 2.16, "long_avg": 1.07},
    "aalo": {"avg": 1.69, "p95": 2.37, "short_avg": 1.96, "long_avg": 0.90},
}
LONG_THRESHOLD = 40.0


def test_fig9_cct_difference(benchmark, trace, sunflow_inter_1g):
    def compute():
        sunflow = sunflow_inter_1g.by_id()
        out = {}
        for name, allocator in (("varys", VarysAllocator()), ("aalo", AaloAllocator())):
            packet = simulate_packet(trace, allocator, BANDWIDTH).by_id()
            ratios, deltas = {}, {}
            for cid, record in sunflow.items():
                ratios[cid] = record.cct / packet[cid].cct
                deltas[cid] = record.cct - packet[cid].cct
            out[name] = {"ratios": ratios, "deltas": deltas}
        out["long_ids"] = {
            r.coflow_id
            for r in sunflow_inter_1g.records
            if r.average_processing_time > LONG_THRESHOLD * DELTA
        }
        return out

    results = run_once(benchmark, compute)
    long_ids = results["long_ids"]

    header("Figure 9 / §5.4: per-Coflow CCT, Sunflow vs packet schedulers")
    emit(f"{'vs':>6} {'metric':>10} {'paper':>7} {'ours':>7}")
    for name in ("varys", "aalo"):
        ratios = results[name]["ratios"]
        all_ratios = list(ratios.values())
        short_ratios = [v for cid, v in ratios.items() if cid not in long_ids]
        long_ratios = [v for cid, v in ratios.items() if cid in long_ids]
        emit(f"{name:>6} {'avg ratio':>10} {PAPER[name]['avg']:>7.2f} "
             f"{mean(all_ratios):>7.2f}")
        emit(f"{name:>6} {'p95 ratio':>10} {PAPER[name]['p95']:>7.2f} "
             f"{percentile(all_ratios, 95):>7.2f}")
        emit(f"{name:>6} {'short avg':>10} {PAPER[name]['short_avg']:>7.2f} "
             f"{mean(short_ratios):>7.2f}")
        emit(f"{name:>6} {'long avg':>10} {PAPER[name]['long_avg']:>7.2f} "
             f"{mean(long_ratios):>7.2f}")

    emit()
    emit("ΔCCT summary (Sunflow − packet scheduler, seconds):")
    for name in ("varys", "aalo"):
        deltas = results[name]["deltas"]
        faster = sum(1 for v in deltas.values() if v < 0)
        emit(
            f"  vs {name}: {faster}/{len(deltas)} coflows finish faster under "
            f"Sunflow; worst +{max(deltas.values()):.3f}s, "
            f"best {min(deltas.values()):.3f}s"
        )

    for name in ("varys", "aalo"):
        ratios = results[name]["ratios"]
        short_ratios = [v for cid, v in ratios.items() if cid not in long_ids]
        long_ratios = [v for cid, v in ratios.items() if cid in long_ids]
        # The ratio metric penalizes short Coflows more than long ones.
        assert mean(short_ratios) > mean(long_ratios)
        # Long Coflows are competitive (paper: 1.07 vs Varys, 0.90 vs Aalo).
        assert mean(long_ratios) < 1.4
    # Some large Coflows genuinely finish faster under Sunflow.
    assert any(v < 0 for v in results["varys"]["deltas"].values())
