"""Shared fixtures for the evaluation benchmarks.

Every file under ``benchmarks/`` regenerates one table or figure of the
paper (see DESIGN.md's per-experiment index).  Each bench prints the rows
the paper reports — "paper" column vs "measured" column — and times the
underlying computation via pytest-benchmark.

Two profiles:

* **quick** (default): a 200-Coflow, width-≤40 Facebook-like trace on the
  paper's 150-port fabric.  The whole suite completes in a few minutes.
* **paper scale**: set ``REPRO_FULL=1`` for the full 526-Coflow trace with
  unbounded widths (slower, closest to the published setup).

Individual knobs: ``REPRO_TRACE_COFLOWS``, ``REPRO_TRACE_MAX_WIDTH``,
``REPRO_TRACE_SEED``.
"""

from __future__ import annotations

import os

import pytest

from repro.sim import (
    simulate_inter_sunflow,
    simulate_intra_assignment,
    simulate_intra_sunflow,
)
from repro.schedulers import SolsticeScheduler
from repro.units import GBPS, MS
from repro.workloads import (
    FacebookLikeTraceGenerator,
    GeneratorConfig,
    perturb_sizes,
)

#: The paper's default network settings.
BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


def _env_int(name: str, default: int) -> int:
    value = os.environ.get(name)
    return int(value) if value else default


FULL = os.environ.get("REPRO_FULL") == "1"
NUM_COFLOWS = _env_int("REPRO_TRACE_COFLOWS", 526 if FULL else 200)
MAX_WIDTH = (
    None if FULL else _env_int("REPRO_TRACE_MAX_WIDTH", 40)
)
SEED = _env_int("REPRO_TRACE_SEED", 2016)


@pytest.fixture(scope="session")
def trace():
    """The evaluation workload: Facebook-like trace with ±5 % perturbation."""
    config = GeneratorConfig(
        num_ports=150,
        num_coflows=NUM_COFLOWS,
        max_width=MAX_WIDTH,
        seed=SEED,
    )
    generated = FacebookLikeTraceGenerator(config).generate()
    return perturb_sizes(generated, fraction=0.05, seed=SEED)


@pytest.fixture(scope="session")
def report_cache():
    """Memo for expensive simulation reports shared across bench files."""
    return {}


@pytest.fixture(scope="session")
def sunflow_intra_1g(trace, report_cache):
    key = ("sunflow-intra", BANDWIDTH, DELTA)
    if key not in report_cache:
        report_cache[key] = simulate_intra_sunflow(trace, BANDWIDTH, DELTA)
    return report_cache[key]


@pytest.fixture(scope="session")
def solstice_intra_1g(trace, report_cache):
    key = ("solstice-intra", BANDWIDTH, DELTA)
    if key not in report_cache:
        report_cache[key] = simulate_intra_assignment(
            trace, SolsticeScheduler(), BANDWIDTH, DELTA
        )
    return report_cache[key]


@pytest.fixture(scope="session")
def sunflow_inter_1g(trace, report_cache):
    key = ("sunflow-inter", BANDWIDTH, DELTA)
    if key not in report_cache:
        report_cache[key] = simulate_inter_sunflow(trace, BANDWIDTH, DELTA)
    return report_cache[key]




def pytest_terminal_summary(terminalreporter):
    """Flush the paper-vs-measured rows after the run and save a copy."""
    import _utils

    if not _utils.LINES:
        return
    for line in _utils.LINES:
        terminalreporter.write_line(line)
    results_dir = os.path.join(os.path.dirname(__file__), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "latest.txt"), "w", encoding="utf-8") as fh:
        fh.write("\n".join(_utils.LINES) + "\n")
    terminalreporter.write_line("")
    terminalreporter.write_line(
        "(rows saved to benchmarks/results/latest.txt)"
    )
