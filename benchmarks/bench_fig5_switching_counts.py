"""Figure 5 — switching count normalized by the minimum (|C|), M2M Coflows.

Paper: Sunflow's switching count is *always* the minimum (ratio ≡ 1);
Solstice schedules many switchings per subflow (ratios spread up to >10),
and its normalized count grows with |C| (linear correlation 0.84).
"""

from repro.analysis import pearson, spearman
from repro.core.coflow import CoflowCategory
from repro.sim import mean, percentile

from _utils import emit, header, run_once

PAPER_SOLSTICE_CORRELATION = 0.84


def _m2m(report):
    return report.filtered(lambda r: r.category is CoflowCategory.MANY_TO_MANY)


def test_fig5_switching_counts(benchmark, sunflow_intra_1g, solstice_intra_1g):
    def compute():
        sunflow = _m2m(sunflow_intra_1g)
        solstice = _m2m(solstice_intra_1g)
        records = sorted(solstice.records, key=lambda r: r.num_flows)
        sizes = [float(r.num_flows) for r in records]
        normalized = [r.normalized_switching for r in records]
        quarter = max(1, len(records) // 4)
        quartiles = [
            (
                records[i * quarter].num_flows,
                records[min(len(records), (i + 1) * quarter) - 1].num_flows,
                mean(normalized[i * quarter : (i + 1) * quarter or None]),
            )
            for i in range(4)
        ]
        return {
            "sunflow": [r.normalized_switching for r in sunflow.records],
            "solstice": normalized,
            "pearson": pearson(sizes, normalized),
            "spearman": spearman(sizes, normalized),
            "quartiles": quartiles,
        }

    results = run_once(benchmark, compute)

    header("Figure 5: switching count / minimum (|C|), many-to-many Coflows")
    emit(f"{'scheduler':>10} {'mean':>7} {'median':>7} {'p95':>7} {'max':>7}")
    for name in ("sunflow", "solstice"):
        values = results[name]
        emit(
            f"{name:>10} {mean(values):>7.2f} {percentile(values, 50):>7.2f} "
            f"{percentile(values, 95):>7.2f} {max(values):>7.2f}"
        )
    emit()
    emit(
        "Solstice normalized-switching vs |C| correlation: "
        f"paper {PAPER_SOLSTICE_CORRELATION:.2f} (linear), ours "
        f"{results['pearson']:.2f} (linear) / {results['spearman']:.2f} (rank)"
    )
    emit("Solstice normalized switching by |C| quartile:")
    for low, high, value in results["quartiles"]:
        emit(f"  |C| {low:>5}-{high:<5}  mean {value:.2f}")
    emit(
        "  (the overhead rises with |C| and saturates at the threshold-"
    )
    emit(
        "   cascade depth ~log2(peak/quantum); the paper's linear 0.84 lives"
    )
    emit("   on the rising range, asserted here via the quartile trend)")

    # Sunflow is exactly minimal for every Coflow; Solstice is not, and its
    # overhead grows with subflow count until the cascade-depth ceiling.
    assert all(v == 1.0 for v in results["sunflow"])
    assert mean(results["solstice"]) > 1.5
    quartile_means = [value for _, _, value in results["quartiles"]]
    assert quartile_means[2] > quartile_means[0]
