"""§5.3.1 — sensitivity of Sunflow to the reservation consideration order.

Paper: Random averages 0.94× (p95 1.01×) and SortedDemand 0.95× (1.01×)
of the default OrderedPort — i.e. the algorithm is insensitive to the
order, as Lemma 1 predicts (the bound holds for any order).
"""

import random

from repro.core.sunflow import ReservationOrder
from repro.sim import mean, percentile, simulate_intra_sunflow

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

PAPER = {"random": (0.94, 1.01), "sorted_demand": (0.95, 1.01)}


def test_ordering_sensitivity(benchmark, trace, sunflow_intra_1g):
    def compute():
        baseline = sunflow_intra_1g.by_id()
        out = {}
        for order in (ReservationOrder.RANDOM, ReservationOrder.SORTED_DEMAND):
            report = simulate_intra_sunflow(
                trace, BANDWIDTH, DELTA, order=order, rng=random.Random(1)
            )
            ratios = [
                report.by_id()[cid].cct / baseline[cid].cct for cid in baseline
            ]
            out[order.value] = ratios
        return out

    results = run_once(benchmark, compute)

    header("§5.3.1: CCT vs OrderedPort under alternative orderings")
    emit(f"{'ordering':>15} {'avg paper':>10} {'avg ours':>9} "
         f"{'p95 paper':>10} {'p95 ours':>9}")
    for key, (paper_avg, paper_p95) in PAPER.items():
        ratios = results[key]
        emit(
            f"{key:>15} {paper_avg:>10.2f} {mean(ratios):>9.2f} "
            f"{paper_p95:>10.2f} {percentile(ratios, 95):>9.2f}"
        )

    # Insensitivity: both orderings within a few percent of the default.
    for ratios in results.values():
        assert 0.85 < mean(ratios) < 1.15
