"""Figure 10 — inter-Coflow sensitivity to the reconfiguration delay δ.

Paper (Sunflow trace replay, B = 1 Gbps; per-Coflow CCT normalized to its
δ = 10 ms CCT):

    δ        100ms  10ms   1ms  100µs  10µs
    average   4.91  1.00  0.65   0.61  0.61
    p95       7.22  1.00  0.98   0.98  0.98

As at the intra level, optimizing switches below ~1 ms buys little.
"""

from repro.sim import mean, percentile, simulate_inter_sunflow
from repro.units import MS, US

from _utils import emit, header, run_once
from conftest import BANDWIDTH

DELTAS = [(100 * MS, "100ms"), (10 * MS, "10ms"), (1 * MS, "1ms"),
          (100 * US, "100us"), (10 * US, "10us")]
PAPER_AVG = {"100ms": 4.91, "10ms": 1.00, "1ms": 0.65, "100us": 0.61, "10us": 0.61}
PAPER_P95 = {"100ms": 7.22, "10ms": 1.00, "1ms": 0.98, "100us": 0.98, "10us": 0.98}


def test_fig10_delta_sensitivity_inter(benchmark, trace, sunflow_inter_1g):
    def sweep():
        reports = {}
        for delta, label in DELTAS:
            if label == "10ms":
                reports[label] = sunflow_inter_1g
            else:
                reports[label] = simulate_inter_sunflow(trace, BANDWIDTH, delta)
        baseline = reports["10ms"].by_id()
        return {
            label: [
                record.cct / baseline[record.coflow_id].cct
                for record in report.records
            ]
            for label, report in reports.items()
        }

    normalized = run_once(benchmark, sweep)

    header("Figure 10: inter-Coflow δ sensitivity (CCT normalized to δ=10 ms)")
    emit(f"{'δ':>7} {'avg paper':>10} {'avg ours':>9} {'p95 paper':>10} {'p95 ours':>9}")
    for _, label in DELTAS:
        values = normalized[label]
        emit(
            f"{label:>7} {PAPER_AVG[label]:>10.2f} {mean(values):>9.2f} "
            f"{PAPER_P95[label]:>10.2f} {percentile(values, 95):>9.2f}"
        )

    averages = [mean(normalized[label]) for _, label in DELTAS]
    assert averages[0] > 1.5  # 100 ms clearly hurts
    assert all(a >= b - 0.02 for a, b in zip(averages, averages[1:]))
    # Diminishing returns below 1 ms.
    assert abs(mean(normalized["100us"]) - mean(normalized["10us"])) < 0.05
