"""Figure 10 — inter-Coflow sensitivity to the reconfiguration delay δ.

Paper (Sunflow trace replay, B = 1 Gbps; per-Coflow CCT normalized to its
δ = 10 ms CCT):

    δ        100ms  10ms   1ms  100µs  10µs
    average   4.91  1.00  0.65   0.61  0.61
    p95       7.22  1.00  0.98   0.98  0.98

As at the intra level, optimizing switches below ~1 ms buys little.

The five δ points run as one ``repro.sweep`` grid over the declarative
facade spec.  ``REPRO_SWEEP_WORKERS`` sets the pool size (default
serial), ``REPRO_SWEEP_CACHE`` points the content-hash cache at a
directory so re-runs recompute only changed cells.
"""

import os

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.sim import mean, percentile
from repro.sweep import SweepSpec, run_sweep
from repro.units import MS, US

from _utils import emit, header, run_once
from conftest import BANDWIDTH, MAX_WIDTH, NUM_COFLOWS, SEED

DELTAS = [(100 * MS, "100ms"), (10 * MS, "10ms"), (1 * MS, "1ms"),
          (100 * US, "100us"), (10 * US, "10us")]
PAPER_AVG = {"100ms": 4.91, "10ms": 1.00, "1ms": 0.65, "100us": 0.61, "10us": 0.61}
PAPER_P95 = {"100ms": 7.22, "10ms": 1.00, "1ms": 0.98, "100us": 0.98, "10us": 0.98}

SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
SWEEP_CACHE = os.environ.get("REPRO_SWEEP_CACHE") or None

EVAL_TRACE = TraceSpec(
    kind="facebook",
    num_ports=150,
    num_coflows=NUM_COFLOWS,
    max_width=MAX_WIDTH,
    seed=SEED,
    perturb=0.05,
)


def test_fig10_delta_sensitivity_inter(benchmark):
    grid = SweepSpec(
        name="fig10-delta-inter",
        base=SimulationSpec(
            trace=EVAL_TRACE,
            mode="inter",
            scheduler="sunflow",
            network=NetworkSpec(bandwidth_bps=BANDWIDTH),
        ),
        axes={"network.delta": [delta for delta, _ in DELTAS]},
    )

    def sweep():
        result = run_sweep(grid, workers=SWEEP_WORKERS, cache_dir=SWEEP_CACHE)
        assert not result.failures(), [o.result for o in result.failures()]
        reports = {
            label: result.find({"network.delta": delta}).report()
            for delta, label in DELTAS
        }
        baseline = reports["10ms"].by_id()
        return {
            label: [
                record.cct / baseline[record.coflow_id].cct
                for record in report.records
            ]
            for label, report in reports.items()
        }

    normalized = run_once(benchmark, sweep)

    header("Figure 10: inter-Coflow δ sensitivity (CCT normalized to δ=10 ms)")
    emit(f"{'δ':>7} {'avg paper':>10} {'avg ours':>9} {'p95 paper':>10} {'p95 ours':>9}")
    for _, label in DELTAS:
        values = normalized[label]
        emit(
            f"{label:>7} {PAPER_AVG[label]:>10.2f} {mean(values):>9.2f} "
            f"{PAPER_P95[label]:>10.2f} {percentile(values, 95):>9.2f}"
        )

    averages = [mean(normalized[label]) for _, label in DELTAS]
    assert averages[0] > 1.5  # 100 ms clearly hurts
    assert all(a >= b - 0.02 for a, b in zip(averages, averages[1:]))
    # Diminishing returns below 1 ms.
    assert abs(mean(normalized["100us"]) - mean(normalized["10us"])) < 0.05
