#!/usr/bin/env python
"""Streaming million-coflow replay benchmark (bounded memory, flat rate).

Standalone CLI (not a pytest bench): replays a large synthetic arrival
stream through the streaming inter-Coflow engine, sampling RSS and event
throughput, then runs the reference-scale byte-identity and sketch
accuracy checks.  Writes ``BENCH_streaming.json`` at the repository root
and exits nonzero on any correctness violation or a peak-RSS ceiling
breach.

    PYTHONPATH=src python benchmarks/bench_streaming.py
    PYTHONPATH=src python benchmarks/bench_streaming.py --coflows 5000 --assert-peak-rss-mb 512

``REPRO_STREAM_COFLOWS`` overrides the default stream length (CI smoke
uses it to shrink the run).
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--coflows",
        type=int,
        default=int(os.environ.get("REPRO_STREAM_COFLOWS", "100000")),
        help="stream length (default 100000, or REPRO_STREAM_COFLOWS)",
    )
    parser.add_argument("--ports", type=int, default=40, help="fabric width")
    parser.add_argument(
        "--max-width", type=int, default=12, help="cap on Coflow width"
    )
    parser.add_argument("--seed", type=int, default=2016, help="stream seed")
    parser.add_argument(
        "--sample-every",
        type=int,
        default=2000,
        help="events between RSS/throughput samples",
    )
    parser.add_argument(
        "--assert-peak-rss-mb",
        type=float,
        default=None,
        help="hard ceiling on peak RSS (MB); exceeding it exits nonzero "
        "(the CI streaming smoke sets this)",
    )
    parser.add_argument(
        "--skip-reference",
        action="store_true",
        help="skip the 500-coflow byte-identity + sketch-accuracy check",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_streaming.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)

    from repro.perf import bench_provenance
    from repro.perf.streaming_bench import run_reference_check, run_streaming_bench

    result = run_streaming_bench(
        num_coflows=args.coflows,
        num_ports=args.ports,
        max_width=args.max_width,
        seed=args.seed,
        sample_every=args.sample_every,
    )
    result["provenance"] = bench_provenance()

    failures = []
    if not args.skip_reference:
        result["reference_check"] = reference = run_reference_check()
        if not reference["identical"]:
            failures.append(
                "streaming engine diverged from the in-memory engine on the "
                "500-coflow reference replay"
            )
        if not reference["sketch_ok"]:
            failures.append(
                f"sketch rank error {reference['sketch_worst_rank_error']:.4f} "
                f"exceeds the documented bound "
                f"{reference['sketch_rank_error_bound']}"
            )

    peak = result.get("peak_rss_bytes")
    if args.assert_peak_rss_mb is not None:
        result["peak_rss_ceiling_mb"] = args.assert_peak_rss_mb
        if peak is None:
            failures.append("peak RSS unavailable but a ceiling was requested")
        elif peak > args.assert_peak_rss_mb * 1e6:
            failures.append(
                f"peak RSS {peak / 1e6:.0f} MB exceeds the "
                f"{args.assert_peak_rss_mb:.0f} MB ceiling"
            )

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    summary = result["summary"]
    print(
        f"streamed {result['coflows_completed']} coflows / {result['events']} "
        f"events in {result['wall_s']:.2f}s "
        f"({result['events_per_sec']:.0f} events/s)"
    )
    peak_text = f"{peak / 1e6:.0f} MB" if peak else "n/a"
    rss_ratio = result.get("rss_growth_ratio")
    rate_ratio = result.get("throughput_ratio")
    print(
        f"memory: peak RSS {peak_text}, late/early RSS ratio "
        f"{rss_ratio:.3f}" if rss_ratio is not None else
        f"memory: peak RSS {peak_text} (run too short for a ratio)"
    )
    if rate_ratio is not None:
        print(f"throughput: second-half/first-half ratio {rate_ratio:.3f}")
    print(
        f"aggregates: mean CCT {summary['mean_cct_s']:.3f}s, "
        f"p95 {summary['p95_cct_s']:.3f}s, "
        f"{result['prt_compactions']} compactions, "
        f"{result['sketch_merges']} sketch merges, "
        f"{result['digest_centroids']} centroids retained"
    )
    if "reference_check" in result:
        reference = result["reference_check"]
        status = "byte-identical" if reference["identical"] else "DIVERGED"
        print(
            f"reference (500 coflows / 150 ports): {status}, "
            f"sketch worst rank error "
            f"{reference['sketch_worst_rank_error']:.4f} "
            f"(bound {reference['sketch_rank_error_bound']})"
        )

    for failure in failures:
        print(f"ERROR: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
