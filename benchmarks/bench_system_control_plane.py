"""§6 deployment — control-plane cost of the full system stack.

The paper argues Sunflow is deployable with known facilities (centralized
controller, REACToR signaling, Varys-style agents) but leaves the control
plane unevaluated.  This bench runs the component-level system simulation
(:mod:`repro.system`) against the idealized flow-level simulator:

* zero latencies — the two models agree (cross-validated), establishing
  the component stack's correctness;
* realistic datacenter RTTs (0.1–1 ms) — the average CCT overhead of
  actually distributing the schedule, which stays small because Sunflow
  issues each circuit's command once (non-preemptive ⇒ few messages).
"""

import pytest

from repro.sim import simulate_inter_sunflow
from repro.system import LatencyConfig, simulate_system
from repro.units import MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA, SEED


def _system_trace():
    """A smaller slice of the workload: the system runner exchanges several
    messages per reservation, so we keep the bench snappy."""
    config = GeneratorConfig(
        num_ports=60, num_coflows=80, max_width=15, mean_interarrival=2.0, seed=SEED
    )
    return perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=SEED)


def test_system_control_plane(benchmark):
    trace = _system_trace()

    def compute():
        flow = simulate_inter_sunflow(trace, BANDWIDTH, DELTA)
        rows = [("flow-level model", None, flow.average_cct())]
        for label, latency in (
            ("system, ideal", LatencyConfig()),
            ("system, 0.1ms RTTs", LatencyConfig(
                registration=0.05 * MS, command=0.05 * MS, report=0.05 * MS
            )),
            ("system, 1ms RTTs", LatencyConfig(
                registration=0.5 * MS, command=0.5 * MS, report=0.5 * MS
            )),
            ("system, +1ms signal", LatencyConfig(
                registration=0.5 * MS, command=0.5 * MS, report=0.5 * MS,
                signal=1.0 * MS,
            )),
        ):
            report = simulate_system(trace, BANDWIDTH, DELTA, latency=latency)
            rows.append((label, latency, report.average_cct()))
        return rows

    rows = run_once(benchmark, compute)
    baseline = rows[0][2]

    header("§6: control-plane cost (component system vs flow-level model)")
    emit(f"{'configuration':>22} {'avg CCT':>9} {'vs model':>9}")
    for label, _, avg_cct in rows:
        emit(f"{label:>22} {avg_cct:>8.2f}s {avg_cct / baseline:>8.3f}x")
    emit()
    emit("non-preemptive scheduling keeps the command volume at one setup")
    emit("per flow, so millisecond-scale control RTTs cost <~1% average CCT.")

    ideal = rows[1][2]
    # The component stack reproduces the idealized model closely...
    assert ideal == pytest.approx(baseline, rel=0.05)
    # ...and realistic control latencies cost only a few percent.
    for _, _, avg_cct in rows[2:]:
        assert avg_cct < baseline * 1.10
        assert avg_cct >= ideal - 1e-9
