"""Figure 6 — intra-Coflow sensitivity to the reconfiguration delay δ.

Paper (Sunflow, B = 1 Gbps; per-Coflow CCT normalized to its δ = 10 ms
CCT):

    δ        100ms  10ms   1ms  100µs  10µs
    average   5.71  1.00  0.65   0.61  0.61
    p95      13.12  1.00  0.99   0.99  0.99

The marginal benefit of switches faster than ~1 ms is tiny.

The five δ points run as one ``repro.sweep`` grid over the declarative
facade spec (the engine regenerates the evaluation trace per cell from
its ``TraceSpec``).  ``REPRO_SWEEP_WORKERS`` sets the pool size (default
serial), ``REPRO_SWEEP_CACHE`` points the content-hash cache at a
directory so re-runs recompute only changed cells.
"""

import os

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.sim import mean, percentile
from repro.sweep import SweepSpec, run_sweep
from repro.units import MS, US

from _utils import emit, header, run_once
from conftest import BANDWIDTH, MAX_WIDTH, NUM_COFLOWS, SEED

DELTAS = [(100 * MS, "100ms"), (10 * MS, "10ms"), (1 * MS, "1ms"),
          (100 * US, "100us"), (10 * US, "10us")]
PAPER_AVG = {"100ms": 5.71, "10ms": 1.00, "1ms": 0.65, "100us": 0.61, "10us": 0.61}
PAPER_P95 = {"100ms": 13.12, "10ms": 1.00, "1ms": 0.99, "100us": 0.99, "10us": 0.99}

SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
SWEEP_CACHE = os.environ.get("REPRO_SWEEP_CACHE") or None

#: The same workload as the ``trace`` fixture, declaratively.
EVAL_TRACE = TraceSpec(
    kind="facebook",
    num_ports=150,
    num_coflows=NUM_COFLOWS,
    max_width=MAX_WIDTH,
    seed=SEED,
    perturb=0.05,
)


def test_fig6_delta_sensitivity_intra(benchmark):
    grid = SweepSpec(
        name="fig6-delta-intra",
        base=SimulationSpec(
            trace=EVAL_TRACE,
            mode="intra",
            scheduler="sunflow",
            network=NetworkSpec(bandwidth_bps=BANDWIDTH),
        ),
        axes={"network.delta": [delta for delta, _ in DELTAS]},
    )

    def sweep():
        result = run_sweep(grid, workers=SWEEP_WORKERS, cache_dir=SWEEP_CACHE)
        assert not result.failures(), [o.result for o in result.failures()]
        reports = {
            label: result.find({"network.delta": delta}).report()
            for delta, label in DELTAS
        }
        baseline = reports["10ms"].by_id()
        return {
            label: [
                record.cct / baseline[record.coflow_id].cct
                for record in report.records
            ]
            for label, report in reports.items()
        }

    normalized = run_once(benchmark, sweep)

    header("Figure 6: intra-Coflow δ sensitivity (CCT normalized to δ=10 ms)")
    emit(f"{'δ':>7} {'avg paper':>10} {'avg ours':>9} {'p95 paper':>10} {'p95 ours':>9}")
    for _, label in DELTAS:
        values = normalized[label]
        emit(
            f"{label:>7} {PAPER_AVG[label]:>10.2f} {mean(values):>9.2f} "
            f"{PAPER_P95[label]:>10.2f} {percentile(values, 95):>9.2f}"
        )

    averages = [mean(normalized[label]) for _, label in DELTAS]
    # Monotone improvement as δ shrinks…
    assert all(a >= b - 1e-9 for a, b in zip(averages, averages[1:]))
    # …with a big win from 100 ms → 10 ms and diminishing returns ≤ 100 µs.
    assert averages[0] > 2.0
    assert abs(mean(normalized["100us"]) - mean(normalized["10us"])) < 0.02
