"""Figure 6 — intra-Coflow sensitivity to the reconfiguration delay δ.

Paper (Sunflow, B = 1 Gbps; per-Coflow CCT normalized to its δ = 10 ms
CCT):

    δ        100ms  10ms   1ms  100µs  10µs
    average   5.71  1.00  0.65   0.61  0.61
    p95      13.12  1.00  0.99   0.99  0.99

The marginal benefit of switches faster than ~1 ms is tiny.
"""

from repro.sim import mean, percentile, simulate_intra_sunflow
from repro.units import MS, US

from _utils import emit, header, run_once
from conftest import BANDWIDTH

DELTAS = [(100 * MS, "100ms"), (10 * MS, "10ms"), (1 * MS, "1ms"),
          (100 * US, "100us"), (10 * US, "10us")]
PAPER_AVG = {"100ms": 5.71, "10ms": 1.00, "1ms": 0.65, "100us": 0.61, "10us": 0.61}
PAPER_P95 = {"100ms": 13.12, "10ms": 1.00, "1ms": 0.99, "100us": 0.99, "10us": 0.99}


def test_fig6_delta_sensitivity_intra(benchmark, trace):
    def sweep():
        reports = {
            label: simulate_intra_sunflow(trace, BANDWIDTH, delta)
            for delta, label in DELTAS
        }
        baseline = reports["10ms"].by_id()
        normalized = {}
        for label, report in reports.items():
            normalized[label] = [
                record.cct / baseline[record.coflow_id].cct
                for record in report.records
            ]
        return normalized

    normalized = run_once(benchmark, sweep)

    header("Figure 6: intra-Coflow δ sensitivity (CCT normalized to δ=10 ms)")
    emit(f"{'δ':>7} {'avg paper':>10} {'avg ours':>9} {'p95 paper':>10} {'p95 ours':>9}")
    for _, label in DELTAS:
        values = normalized[label]
        emit(
            f"{label:>7} {PAPER_AVG[label]:>10.2f} {mean(values):>9.2f} "
            f"{PAPER_P95[label]:>10.2f} {percentile(values, 95):>9.2f}"
        )

    averages = [mean(normalized[label]) for _, label in DELTAS]
    # Monotone improvement as δ shrinks…
    assert all(a >= b - 1e-9 for a, b in zip(averages, averages[1:]))
    # …with a big win from 100 ms → 10 ms and diminishing returns ≤ 100 µs.
    assert averages[0] > 2.0
    assert abs(mean(normalized["100us"]) - mean(normalized["10us"])) < 0.02
