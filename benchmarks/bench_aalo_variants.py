"""Ablation — Aalo modeling choices (EXPERIMENTS.md deviation #2).

Our Figure-8 Aalo is *stronger* than the paper's (Sunflow/Aalo ≈ 1.0
instead of 0.5–0.8).  This ablation quantifies how much each modeling
choice flatters Aalo:

* reallocation granularity — ideal (on every flow completion, Δ→0) vs
  coarse (only at Coflow arrivals/completions, like Varys);
* inter-queue discipline — strict priority vs weighted sharing.

All variants keep D-CLAS queue semantics; the variant ordering bounds
where the paper's Aalo sits.
"""

from repro.sim import AaloAllocator, VarysAllocator, simulate_packet

from _utils import emit, header, run_once
from conftest import BANDWIDTH


def test_aalo_variants(benchmark, trace, sunflow_inter_1g):
    def compute():
        rows = []
        variants = [
            ("ideal + strict", AaloAllocator(discipline="strict"), True),
            ("ideal + weighted", AaloAllocator(discipline="weighted"), True),
            ("coarse + strict", AaloAllocator(discipline="strict"), False),
            ("coarse + weighted", AaloAllocator(discipline="weighted"), False),
        ]
        varys = simulate_packet(trace, VarysAllocator(), BANDWIDTH)
        for label, allocator, fine in variants:
            allocator.reallocate_on_flow_completion = fine
            report = simulate_packet(trace, allocator, BANDWIDTH)
            rows.append((label, report.average_cct()))
        return varys.average_cct(), rows

    varys_avg, rows = run_once(benchmark, compute)
    sunflow_avg = sunflow_inter_1g.average_cct()

    header("Ablation: Aalo modeling variants (inter mode, original load)")
    emit(f"reference: Varys avg CCT {varys_avg:.2f}s, "
         f"Sunflow avg CCT {sunflow_avg:.2f}s")
    emit()
    emit(f"{'Aalo variant':>18} {'avg CCT':>9} {'Sunflow/Aalo':>13} {'Varys/Aalo':>11}")
    for label, avg in rows:
        emit(f"{label:>18} {avg:>8.2f}s {sunflow_avg / avg:>12.2f}x "
             f"{varys_avg / avg:>10.2f}x")
    emit()
    emit("paper's Figure 8 has Sunflow/Aalo at 0.48-0.83 under load; every")
    emit("variant here keeps Aalo within ~10% of Varys, so the paper's Aalo")
    emit("was likely further degraded by implementation factors we idealize.")

    by_label = dict(rows)
    # Coarse reallocation wastes freed bandwidth: never faster than ideal.
    assert by_label["coarse + strict"] >= by_label["ideal + strict"] - 1e-9
    # Aalo (non-clairvoyant) never beats Varys (clairvoyant) on average.
    for _, avg in rows:
        assert avg >= varys_avg * 0.98
