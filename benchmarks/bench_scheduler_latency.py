"""§6 — scheduler computation latency.

Paper: the authors' untuned C++ implementation computes a schedule in
under 1 second for Coflows with up to 3 000 subflows.  We measure this
Python implementation on the same |C| sweep; the quadratic trend is the
claim, the constant differs by language.

This is the one benchmark where pytest-benchmark's repeated rounds are
meaningful (pure CPU, no simulation state), so it uses them.
"""

import random

import pytest

from repro.core.prt import PortReservationTable
from repro.core.sunflow import SunflowScheduler
from repro.units import MS

from _utils import emit, header


def coflow_demand(num_flows, num_ports, seed):
    rng = random.Random(seed)
    demand = {}
    while len(demand) < num_flows:
        demand[(rng.randrange(num_ports), rng.randrange(num_ports))] = rng.uniform(
            0.01, 1.0
        )
    return demand


@pytest.mark.parametrize("num_flows", [100, 300, 1000, 3000])
def test_scheduler_latency(benchmark, num_flows):
    demand = coflow_demand(num_flows, 150, seed=num_flows)
    scheduler = SunflowScheduler(delta=10 * MS)

    def plan():
        return scheduler.schedule_demand(PortReservationTable(), 1, demand)

    schedule = benchmark.pedantic(plan, rounds=3, iterations=1)
    assert len(schedule.reservations) >= num_flows

    if num_flows == 3000:
        header("§6: Sunflow scheduling latency (paper: <1 s at |C|=3000, C++)")
        emit(f"  |C|=3000 mean plan time: {benchmark.stats['mean']:.3f} s "
             "(Python; see the pytest-benchmark table for the sweep)")
