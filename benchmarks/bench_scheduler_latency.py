"""§6 — scheduler computation latency.

Paper: the authors' untuned C++ implementation computes a schedule in
under 1 second for Coflows with up to 3 000 subflows.  We measure this
Python implementation on the same |C| sweep; the quadratic trend is the
claim, the constant differs by language.

The |C| points run as one ``repro.sweep`` grid: each cell regenerates a
dense random Coflow from its ``TraceSpec`` (kind ``"random-coflow"``) and
schedules it through the facade, and the engine's per-cell wall clock is
the latency measurement.  ``REPRO_SWEEP_WORKERS`` sets the pool size
(default serial); with a pool, per-cell wall times remain meaningful
because every cell is timed inside its own worker process.
"""

import os

from repro.api import NetworkSpec, SimulationSpec, TraceSpec
from repro.sweep import SweepSpec, run_sweep
from repro.units import MS

from _utils import emit, header, run_once

NUM_FLOWS = [100, 300, 1000, 3000]

SWEEP_WORKERS = int(os.environ.get("REPRO_SWEEP_WORKERS", "0"))
SWEEP_CACHE = os.environ.get("REPRO_SWEEP_CACHE") or None


def test_scheduler_latency(benchmark):
    grid = SweepSpec(
        name="scheduler-latency",
        base=SimulationSpec(
            trace=TraceSpec(kind="random-coflow", num_ports=150, seed=2016),
            mode="intra",
            scheduler="sunflow",
            network=NetworkSpec(delta=10 * MS),
        ),
        axes={"trace.num_flows": NUM_FLOWS},
    )

    def sweep():
        result = run_sweep(grid, workers=SWEEP_WORKERS, cache_dir=SWEEP_CACHE)
        assert not result.failures(), [o.result for o in result.failures()]
        return result

    result = run_once(benchmark, sweep)

    header("§6: Sunflow scheduling latency (paper: <1 s at |C|=3000, C++)")
    emit(f"{'|C|':>6} {'plan+sim wall':>14} {'setups':>8}")
    for num_flows in NUM_FLOWS:
        outcome = result.find({"trace.num_flows": num_flows})
        (record,) = outcome.report().records
        # One reservation per flow at minimum — Sunflow never splits fewer.
        assert record.switching_count >= num_flows
        wall = "cached" if outcome.from_cache else f"{outcome.wall_s:.3f}s"
        emit(f"{num_flows:>6} {wall:>14} {record.switching_count:>8}")
    emit("  (Python; wall includes trace generation and CCT accounting)")
