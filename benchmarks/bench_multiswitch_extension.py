"""Future-work extension — Sunflow over k parallel switch planes.

The paper's §6 names controlling "a network of circuit switches" as future
work.  This bench quantifies the natural first step (k parallel OCS
planes, one transceiver per plane per rack): how much Coflow completion
improves with extra planes, per traffic category.

Expected shape: port-contended Coflows (in-casts and dense shuffles)
scale ~1/k, while permutation-like traffic — which never shares ports —
gains nothing; the fabric-wide average sits in between, dominated by the
heavy many-to-many shuffles.
"""

from repro.core.multiswitch import MultiSwitchSunflow
from repro.sim import mean

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

PLANES = (1, 2, 4)


def test_multiswitch_scaling(benchmark, trace):
    def compute():
        per_plane = {}
        for planes in PLANES:
            scheduler = MultiSwitchSunflow(num_planes=planes, delta=DELTA)
            ccts = {}
            for coflow in trace:
                schedule = scheduler.schedule_coflow(coflow, BANDWIDTH)
                ccts[coflow.coflow_id] = schedule.makespan
            per_plane[planes] = ccts
        return per_plane

    per_plane = run_once(benchmark, compute)
    base = per_plane[1]

    header("Future work: Sunflow on k parallel switch planes (intra mode)")
    emit(f"{'planes':>7} {'avg CCT':>9} {'vs k=1':>8} {'mean speedup':>13}")
    for planes in PLANES:
        ccts = per_plane[planes]
        average = mean(list(ccts.values()))
        speedups = [base[cid] / ccts[cid] for cid in ccts]
        emit(
            f"{planes:>7} {average:>8.2f}s "
            f"{average / mean(list(base.values())):>8.3f}x {mean(speedups):>12.2f}x"
        )
    emit()
    emit("contended coflows (in-cast, dense shuffles) scale with the plane")
    emit("count; permutation-like demand is already contention-free at k=1.")

    # More planes never hurt, and help on average.
    for cid in base:
        assert per_plane[4][cid] <= base[cid] + 1e-9
    assert mean(list(per_plane[4].values())) < mean(list(base.values()))
