"""K-core fabric scaling — Sunflow over k parallel switch cores.

The paper's §6 names controlling "a network of circuit switches" as future
work.  This bench quantifies the natural first step (k parallel OCS
cores, one transceiver per core per rack): how much Coflow completion
improves with extra cores, per traffic category, under the flow-spreading
``first-fit`` placement (the K-core generalization of MakeReservation).

Expected shape: port-contended Coflows (in-casts and dense shuffles)
scale ~1/k, while permutation-like traffic — which never shares ports —
gains nothing; the fabric-wide average sits in between, dominated by the
heavy many-to-many shuffles.
"""

from repro.core.multicore import MultiCoreSunflowScheduler, uniform_cores
from repro.sim import mean

from _utils import emit, header, run_once
from conftest import BANDWIDTH, DELTA

CORES = (1, 2, 4)


def test_multicore_scaling(benchmark, trace):
    def compute():
        per_k = {}
        for num_cores in CORES:
            scheduler = MultiCoreSunflowScheduler(
                uniform_cores(num_cores, BANDWIDTH, DELTA)
            )
            ccts = {}
            for coflow in trace:
                schedule = scheduler.schedule_coflow(coflow, policy="first-fit")
                ccts[coflow.coflow_id] = schedule.makespan
            per_k[num_cores] = ccts
        return per_k

    per_k = run_once(benchmark, compute)
    base = per_k[1]

    header("K-core fabric: Sunflow on k parallel switch cores (intra mode)")
    emit(f"{'cores':>7} {'avg CCT':>9} {'vs k=1':>8} {'mean speedup':>13}")
    for num_cores in CORES:
        ccts = per_k[num_cores]
        average = mean(list(ccts.values()))
        speedups = [base[cid] / ccts[cid] for cid in ccts]
        emit(
            f"{num_cores:>7} {average:>8.2f}s "
            f"{average / mean(list(base.values())):>8.3f}x {mean(speedups):>12.2f}x"
        )
    emit()
    emit("contended coflows (in-cast, dense shuffles) scale with the core")
    emit("count; permutation-like demand is already contention-free at k=1.")

    # More cores never hurt, and help on average.
    for cid in base:
        assert per_k[4][cid] <= base[cid] + 1e-9
    assert mean(list(per_k[4].values())) < mean(list(base.values()))
