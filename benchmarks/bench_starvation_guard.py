"""§4.2 ablation — the (T + τ) starvation guard.

The paper proposes, but does not evaluate, a round-robin guard that
bounds every Coflow's service gap by N(T + τ) at some utilization cost.
This ablation quantifies both sides on an adversarial workload: a
privileged long Coflow that would otherwise starve a regular Coflow
indefinitely.
"""

from repro.core.coflow import Coflow, CoflowTrace
from repro.core.starvation import StarvationGuard
from repro.sim import simulate_inter_sunflow
from repro.units import GBPS, MB, MS

from _utils import emit, header, run_once

B = 1 * GBPS
DELTA = 10 * MS
NUM_PORTS = 8


def adversarial_trace():
    """A privileged 4 GB Coflow sharing input port 0 with a tiny regular
    Coflow: under strict classes the regular one waits ~32 s."""
    blocker = Coflow.from_demand(1, {(0, 1): 4000 * MB}, arrival_time=0.0)
    victim = Coflow.from_demand(2, {(0, 2): 2 * MB}, arrival_time=0.0)
    return CoflowTrace(num_ports=NUM_PORTS, coflows=[blocker, victim])


def test_starvation_guard_ablation(benchmark):
    def compute():
        trace = adversarial_trace()
        classes = {1: 0, 2: 1}
        rows = {}
        rows["no guard"] = simulate_inter_sunflow(
            trace, B, DELTA, priority_classes=classes
        ).by_id()
        for period, tau in ((2.0, 0.2), (1.0, 0.1), (0.5, 0.1)):
            guard = StarvationGuard(
                num_ports=NUM_PORTS, period=period, tau=tau, delta=DELTA
            )
            label = f"T={period}s τ={tau}s"
            rows[label] = simulate_inter_sunflow(
                trace, B, DELTA, priority_classes=classes, guard=guard
            ).by_id()
        return rows

    rows = run_once(benchmark, compute)

    header("§4.2 ablation: starvation guard on an adversarial priority pair")
    emit(f"{'setting':>16} {'victim CCT (s)':>15} {'blocker CCT (s)':>16}")
    for label, report in rows.items():
        emit(f"{label:>16} {report[2].cct:>15.2f} {report[1].cct:>16.2f}")
    emit()
    emit("The guard trades blocker utilization for a bounded victim wait")
    emit("(service gap <= N(T+τ) by construction).")

    baseline = rows["no guard"]
    assert baseline[2].cct > 30.0  # starved until the blocker drains
    for label, report in rows.items():
        if label == "no guard":
            continue
        # Guarded victim finishes far sooner; blocker pays a bounded price.
        assert report[2].cct < baseline[2].cct / 2
        assert report[1].cct >= baseline[1].cct - 1e-9
        assert report[1].cct < baseline[1].cct * 1.5
    # Tighter cycles serve the victim sooner.
    assert rows["T=0.5s τ=0.1s"][2].cct <= rows["T=2.0s τ=0.2s"][2].cct + 1e-9
