"""Figure 7 — Sunflow CCT vs the packet-switched lower bound T^p_L.

Paper (B = 1 Gbps, δ = 10 ms): long Coflows (p_avg > 40δ; 25.2 % of
Coflows, 98.8 % of bytes) achieve CCT/T^p_L of 1.09 mean / 1.25 p95;
overall 1.86 / 2.31; all Coflows below the 4.5 Lemma-2 cap; rank
correlation between p_avg and CCT/T^p_L is −0.96.
"""

from repro.analysis import spearman
from repro.sim import mean, percentile

from _utils import emit, header, run_once
from conftest import DELTA

PAPER = {
    "long": (1.09, 1.25),
    "overall": (1.86, 2.31),
    "rank_correlation": -0.96,
    "lemma2_cap": 4.5,
}
LONG_THRESHOLD = 40.0


def test_fig7_vs_packet_bound(benchmark, trace, sunflow_intra_1g):
    def compute():
        records = sunflow_intra_1g.records
        long_records = [
            r for r in records if r.average_processing_time > LONG_THRESHOLD * DELTA
        ]
        short_records = [
            r for r in records if r.average_processing_time <= LONG_THRESHOLD * DELTA
        ]
        return {
            "overall": [r.cct_over_packet_lower for r in records],
            "long": [r.cct_over_packet_lower for r in long_records],
            "short": [r.cct_over_packet_lower for r in short_records],
            "long_fraction": len(long_records) / len(records),
            "long_bytes_fraction": sum(r.total_bytes for r in long_records)
            / sum(r.total_bytes for r in records),
            "rank_correlation": spearman(
                [r.average_processing_time for r in records],
                [r.cct_over_packet_lower for r in records],
            ),
        }

    results = run_once(benchmark, compute)

    header("Figure 7: Sunflow CCT / TpL (B = 1 Gbps, δ = 10 ms)")
    emit(f"{'group':>8} {'mean paper':>11} {'mean ours':>10} "
         f"{'p95 paper':>10} {'p95 ours':>9}")
    for group in ("long", "overall"):
        paper_mean, paper_p95 = PAPER[group]
        values = results[group]
        emit(
            f"{group:>8} {paper_mean:>11.2f} {mean(values):>10.2f} "
            f"{paper_p95:>10.2f} {percentile(values, 95):>9.2f}"
        )
    emit()
    emit(
        f"long coflows: {100 * results['long_fraction']:.1f}% of coflows "
        f"(paper 25.2%), {100 * results['long_bytes_fraction']:.1f}% of bytes "
        f"(paper 98.8%)"
    )
    emit(
        "rank correlation p_avg vs CCT/TpL: "
        f"paper {PAPER['rank_correlation']:.2f}, ours "
        f"{results['rank_correlation']:.2f}"
    )

    # Lemma 2 cap (α = 1.25 after the 1 MB floor at 1 Gbps).
    assert max(results["overall"]) <= PAPER["lemma2_cap"]
    # Long Coflows approach the packet bound; short ones sit farther away.
    assert mean(results["long"]) < 1.35
    assert mean(results["short"]) > mean(results["long"])
    assert results["rank_correlation"] < -0.5
    assert results["long_bytes_fraction"] > 0.9
