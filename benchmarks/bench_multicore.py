#!/usr/bin/env python
"""K-core fabric benchmark (CCT vs lower bound over K ∈ {1, 2, 4, 8}).

Standalone CLI (not a pytest bench): replays a synthetic Facebook-like
trace over 1, 2, 4 and 8 switch cores in both service modes (Fig-6-style
intra, Fig-10-style inter) and every placement policy, reports the mean
CCT normalized by the K-core circuit lower bound, verifies the K = 1
cells bitwise against the single-switch replay plus incremental-vs-full
agreement at every K, and writes the summary to ``BENCH_multicore.json``
at the repository root.

    PYTHONPATH=src python benchmarks/bench_multicore.py
    PYTHONPATH=src python benchmarks/bench_multicore.py --coflows 80 --cores 1 2
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coflows", type=int, default=200, help="trace length")
    parser.add_argument("--ports", type=int, default=150, help="switch radix")
    parser.add_argument(
        "--max-width",
        type=int,
        default=40,
        help="cap on Coflow width (default 40, keeps the 8-core cell quick)",
    )
    parser.add_argument("--seed", type=int, default=2016, help="trace seed")
    parser.add_argument(
        "--cores",
        type=int,
        nargs="+",
        default=[1, 2, 4, 8],
        help="fabric widths to sweep",
    )
    parser.add_argument(
        "--output",
        type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "BENCH_multicore.json",
        help="where to write the JSON summary",
    )
    args = parser.parse_args(argv)

    from repro.perf.multicore_bench import run_multicore_sweep

    result = run_multicore_sweep(
        num_coflows=args.coflows,
        num_ports=args.ports,
        max_width=args.max_width,
        seed=args.seed,
        cores_list=args.cores,
    )

    from repro.perf import bench_provenance

    result["provenance"] = bench_provenance()

    args.output.write_text(json.dumps(result, indent=2) + "\n")
    print(f"wrote {args.output}")
    print(
        f"multicore sweep: {result['wall_s']:.2f}s over "
        f"K={result['config']['cores']}, "
        f"{result['config']['num_coflows']} coflows"
    )
    for cell in result["cells"]:
        ratio = cell["cct_vs_circuit_bound"]
        print(
            f"  {cell['mode']:<5} {cell['policy']:<14} K={cell['num_cores']}: "
            f"mean CCT {cell['mean_cct_s']:.3f}s, "
            f"CCT/bound {ratio if ratio is None else f'{ratio:.3f}'}"
        )
    if result["differential_mismatches"]:
        print(
            f"ERROR: {result['differential_mismatches']} differential "
            "mismatch(es) — K-core replay disagrees with its references",
            file=sys.stderr,
        )
        return 1
    print("differential: 0 mismatches (K=1 bitwise, incremental == full replan)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
