"""Helpers shared by the benchmark files.

``emit``/``header`` buffer the paper-vs-measured rows each bench prints;
the ``pytest_terminal_summary`` hook in ``conftest.py`` flushes the buffer
to the terminal after the run (pytest's capture would otherwise swallow
mid-test prints) and mirrors it to ``benchmarks/results/latest.txt``.
"""

from __future__ import annotations

from typing import List

#: Accumulated report lines for the terminal-summary flush.
LINES: List[str] = []


def emit(text: str = "") -> None:
    """Queue one benchmark report line (also printed inline for -s runs)."""
    LINES.append(text)
    print(text)


def header(title: str) -> None:
    emit()
    emit("=" * 72)
    emit(title)
    emit("=" * 72)


def run_once(benchmark, fn):
    """Time ``fn`` exactly once (simulation benches are deterministic and
    expensive; repeated rounds would only re-measure the same work)."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
