#!/usr/bin/env python
"""Deployment-stack walkthrough: controller, switch and host agents (§6).

Runs the same workload twice — once through the idealized flow-level
simulator, once through the component-level system simulation (central
controller issuing just-in-time circuit commands, a runtime-validating
optical switch, REACToR-style circuit-live signaling, and per-host agents
reporting transfers) — and shows they agree exactly at zero control
latency, then prices realistic control-plane delays.

Run:
    python examples/deployment_system.py
"""

from repro.sim import simulate_inter_sunflow
from repro.system import LatencyConfig, simulate_system
from repro.units import GBPS, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


def main() -> None:
    config = GeneratorConfig(
        num_ports=40, num_coflows=40, max_width=10, mean_interarrival=2.0, seed=7
    )
    trace = perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=7)
    print(
        f"workload: {len(trace)} coflows, {trace.total_bytes / 1e9:.1f} GB on "
        f"{trace.num_ports} ports; B = 1 Gbps, δ = 10 ms\n"
    )

    flow_model = simulate_inter_sunflow(trace, BANDWIDTH, DELTA)
    print(f"{'configuration':>28} {'avg CCT':>9} {'vs model':>9}")
    print(f"{'flow-level model':>28} {flow_model.average_cct():>8.3f}s {'1.000x':>9}")

    scenarios = [
        ("system, ideal control plane", LatencyConfig()),
        ("system, 0.5ms ctrl RTTs", LatencyConfig(
            registration=0.25 * MS, command=0.25 * MS, report=0.25 * MS
        )),
        ("system, +2ms live signal", LatencyConfig(
            registration=0.25 * MS, command=0.25 * MS, report=0.25 * MS,
            signal=2 * MS,
        )),
    ]
    for label, latency in scenarios:
        report = simulate_system(trace, BANDWIDTH, DELTA, latency=latency)
        ratio = report.average_cct() / flow_model.average_cct()
        print(f"{label:>28} {report.average_cct():>8.3f}s {ratio:>8.3f}x")

    print()
    print("The component stack reproduces the idealized model exactly when")
    print("control is free; compensated command/report delays are nearly")
    print("free too (commands are issued just-in-time, one per circuit),")
    print("while uncompensated circuit-live signal latency directly eats")
    print("transmit windows and is replanned as REACToR 'glitch' leftovers.")


if __name__ == "__main__":
    main()
