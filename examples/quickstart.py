#!/usr/bin/env python
"""Quickstart: schedule one Coflow on an optical circuit switch.

Builds the many-to-many shuffle of the paper's Figure 1, schedules it with
Sunflow, and prints the resulting circuit timeline alongside the
theoretical lower bounds.

Run:
    python examples/quickstart.py
"""

from repro import Coflow, SunflowScheduler, circuit_lower_bound, packet_lower_bound
from repro.units import GBPS, MB, MS

BANDWIDTH = 1 * GBPS  # link rate B
DELTA = 10 * MS       # 3D-MEMS reconfiguration delay δ


def main() -> None:
    # A Coflow is a set of flows sharing one completion objective.  This one
    # moves a shuffle from 5 mapper racks (in.0-4) to 2 reducer racks
    # (out.5-6), mirroring Figure 1 of the paper.
    shuffle = Coflow.from_demand(
        coflow_id=1,
        demand={
            (0, 5): 100 * MB,
            (1, 6): 40 * MB,
            (2, 5): 50 * MB,
            (2, 6): 80 * MB,
            (3, 6): 30 * MB,
            (4, 5): 20 * MB,
            (4, 6): 60 * MB,
        },
    )

    scheduler = SunflowScheduler(delta=DELTA)
    schedule = scheduler.schedule_coflow(shuffle, bandwidth_bps=BANDWIDTH)

    print("Sunflow circuit timeline (one reservation per flow — no preemption):")
    print(f"{'circuit':>12} {'start':>8} {'end':>8} {'setup':>7} {'transmit':>9}")
    for reservation in sorted(schedule.reservations, key=lambda r: (r.start, r.src)):
        print(
            f"  in.{reservation.src} -> out.{reservation.dst} "
            f"{reservation.start:>8.3f} {reservation.end:>8.3f} "
            f"{reservation.setup * 1000:>5.0f}ms {reservation.transmit_duration:>8.3f}s"
        )

    tcl = circuit_lower_bound(shuffle, BANDWIDTH, DELTA)
    tpl = packet_lower_bound(shuffle, BANDWIDTH)
    print()
    print(f"Coflow completion time: {schedule.makespan:.3f} s")
    print(f"circuit-switched lower bound TcL: {tcl:.3f} s "
          f"(CCT/TcL = {schedule.makespan / tcl:.3f}, Lemma 1 caps this at 2)")
    print(f"packet-switched lower bound TpL:  {tpl:.3f} s "
          f"(CCT/TpL = {schedule.makespan / tpl:.3f})")
    print(f"circuit setups: {schedule.num_setups} "
          f"(= |C| = {shuffle.num_flows}, the minimum possible)")


if __name__ == "__main__":
    main()
