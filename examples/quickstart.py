#!/usr/bin/env python
"""Quickstart: schedule one Coflow on an optical circuit switch.

Builds the many-to-many shuffle of the paper's Figure 1, runs it through
the unified ``repro.api.simulate`` facade, and prints the resulting
circuit timeline alongside the theoretical lower bounds.

Run:
    python examples/quickstart.py
"""

from repro import Coflow, CoflowTrace, SunflowScheduler
from repro.api import NetworkSpec, SimulationSpec, simulate
from repro.units import GBPS, MB, MS

BANDWIDTH = 1 * GBPS  # link rate B
DELTA = 10 * MS       # 3D-MEMS reconfiguration delay δ


def main() -> None:
    # A Coflow is a set of flows sharing one completion objective.  This one
    # moves a shuffle from 5 mapper racks (in.0-4) to 2 reducer racks
    # (out.5-6), mirroring Figure 1 of the paper.
    shuffle = Coflow.from_demand(
        coflow_id=1,
        demand={
            (0, 5): 100 * MB,
            (1, 6): 40 * MB,
            (2, 5): 50 * MB,
            (2, 6): 80 * MB,
            (3, 6): 30 * MB,
            (4, 5): 20 * MB,
            (4, 6): 60 * MB,
        },
    )

    # Every simulation — Sunflow or baseline, intra or inter, circuit or
    # packet — runs through one declarative entry point.
    spec = SimulationSpec(
        trace=CoflowTrace(num_ports=7, coflows=[shuffle]),
        mode="intra",
        scheduler="sunflow",
        network=NetworkSpec(bandwidth_bps=BANDWIDTH, delta=DELTA),
    )
    report = simulate(spec)
    record = report.records[0]

    # For the circuit-by-circuit timeline, ask the scheduler directly.
    schedule = SunflowScheduler(delta=DELTA).schedule_coflow(
        shuffle, bandwidth_bps=BANDWIDTH
    )
    print("Sunflow circuit timeline (one reservation per flow — no preemption):")
    print(f"{'circuit':>12} {'start':>8} {'end':>8} {'setup':>7} {'transmit':>9}")
    for reservation in sorted(schedule.reservations, key=lambda r: (r.start, r.src)):
        print(
            f"  in.{reservation.src} -> out.{reservation.dst} "
            f"{reservation.start:>8.3f} {reservation.end:>8.3f} "
            f"{reservation.setup * 1000:>5.0f}ms {reservation.transmit_duration:>8.3f}s"
        )

    print()
    print(f"Coflow completion time: {record.cct:.3f} s")
    print(f"circuit-switched lower bound TcL: {record.circuit_lower:.3f} s "
          f"(CCT/TcL = {record.cct_over_circuit_lower:.3f}, Lemma 1 caps this at 2)")
    print(f"packet-switched lower bound TpL:  {record.packet_lower:.3f} s "
          f"(CCT/TpL = {record.cct_over_packet_lower:.3f})")
    print(f"circuit setups: {record.switching_count} "
          f"(= |C| = {shuffle.num_flows}, the minimum possible)")


if __name__ == "__main__":
    main()
