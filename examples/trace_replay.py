#!/usr/bin/env python
"""Full trace replay: Sunflow (optical circuits) vs Varys and Aalo (packets).

Reproduces the paper's §5.4 story on a generated workload: at moderate
load, Coflows finish on average just as fast in a Sunflow-scheduled
circuit network as in a packet network running the state-of-the-art
Coflow schedulers — making the OCS a viable drop-in with its data-rate,
energy and longevity advantages.

Run:
    python examples/trace_replay.py [--coflows 150] [--idleness 0.2]
"""

import argparse

from repro.analysis import network_idleness
from repro.sim import (
    AaloAllocator,
    VarysAllocator,
    mean,
    percentile,
    simulate_inter_sunflow,
    simulate_packet,
)
from repro.units import GBPS, MS
from repro.workloads import (
    FacebookLikeTraceGenerator,
    GeneratorConfig,
    perturb_sizes,
    scale_to_idleness,
)

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coflows", type=int, default=150)
    parser.add_argument(
        "--idleness",
        type=float,
        default=None,
        help="scale Coflow bytes to hit this network idleness (§5.4)",
    )
    args = parser.parse_args()

    config = GeneratorConfig(
        num_ports=150, num_coflows=args.coflows, max_width=30, seed=2016
    )
    trace = perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=2016)
    if args.idleness is not None:
        trace = scale_to_idleness(trace, BANDWIDTH, args.idleness)
    idleness = network_idleness(trace, BANDWIDTH)
    print(
        f"workload: {len(trace)} coflows over {trace.span:.0f} s, "
        f"{trace.total_bytes / 1e9:.1f} GB, network idleness {idleness:.0%}"
    )

    print("\nreplaying with arrivals (reschedule on coflow arrival/completion)…")
    reports = {
        "sunflow (OCS)": simulate_inter_sunflow(trace, BANDWIDTH, DELTA),
        "varys (packet)": simulate_packet(trace, VarysAllocator(), BANDWIDTH),
        "aalo (packet)": simulate_packet(trace, AaloAllocator(), BANDWIDTH),
    }

    print()
    print(f"{'scheduler':>15} {'avg CCT':>9} {'median':>8} {'p95':>9}")
    for name, report in reports.items():
        ccts = report.ccts()
        print(
            f"{name:>15} {mean(ccts):>8.2f}s {percentile(ccts, 50):>7.2f}s "
            f"{percentile(ccts, 95):>8.2f}s"
        )

    sunflow = reports["sunflow (OCS)"].average_cct()
    varys = reports["varys (packet)"].average_cct()
    aalo = reports["aalo (packet)"].average_cct()
    print()
    print(f"Sunflow average CCT is {sunflow / varys:.2f}x Varys and "
          f"{sunflow / aalo:.2f}x Aalo on this workload —")
    print("circuit switching keeps up with packet switching at the Coflow level.")


if __name__ == "__main__":
    main()
