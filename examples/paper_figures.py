#!/usr/bin/env python
"""Reproduce the paper's illustrative Figures 1 and 2 as ASCII timelines.

Figure 1 contrasts Solstice's preemptive assignment sequence with
Sunflow's one-reservation-per-flow schedule on a 5×2 Coflow; Figure 2
shows inter-Coflow scheduling where a lower-priority Coflow's reservation
is truncated so it cannot block a higher-priority one.

Run:
    python examples/paper_figures.py
"""

from repro.analysis.timeline import render_timeline
from repro.core.coflow import Coflow
from repro.core.sunflow import SunflowScheduler
from repro.schedulers import SolsticeScheduler
from repro.sim.assignment_exec import execute_assignments
from repro.units import GBPS, MB, MS

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS


def figure_1() -> None:
    print("=" * 72)
    print("Figure 1: intra-Coflow scheduling, Sunflow vs Solstice")
    print("=" * 72)
    demand = {
        (0, 6): 100 * MB,
        (1, 7): 40 * MB,
        (2, 6): 50 * MB,
        (2, 7): 80 * MB,
        (3, 7): 30 * MB,
        (4, 6): 20 * MB,
        (4, 7): 60 * MB,
    }
    coflow = Coflow.from_demand(1, demand)

    schedule = SunflowScheduler(delta=DELTA).schedule_coflow(coflow, BANDWIDTH)
    print("\n(c) Sunflow — non-preemptive, circuits interleave freely")
    print("    ('=' marks the δ reconfiguration; digits are the output port)\n")
    print(render_timeline(schedule.reservations, width=64))
    print(f"\n    CCT = {schedule.makespan:.3f} s with "
          f"{schedule.num_setups} setups (= |C|, the minimum)")

    solstice = SolsticeScheduler().schedule(
        coflow.processing_times(BANDWIDTH), num_ports=8
    )
    execution = execute_assignments(
        solstice, coflow.processing_times(BANDWIDTH), DELTA
    )
    print("\n(b) Solstice — synchronized assignments with repeated preemption")
    print(f"    {solstice.num_assignments} assignments, "
          f"{execution.switching_count} circuit establishments "
          f"(vs {coflow.num_flows} flows), CCT = {execution.completion_time:.3f} s")


def figure_2() -> None:
    print()
    print("=" * 72)
    print("Figure 2: inter-Coflow scheduling — truncation, not blocking")
    print("=" * 72)
    scheduler = SunflowScheduler(delta=DELTA)
    # C1 (highest priority) needs in.4 for out.5 shortly; C2 may use in.4
    # for out.6 only until then.
    c1 = Coflow.from_demand(1, {(0, 5): 40 * MB, (4, 5): 60 * MB})
    c2 = Coflow.from_demand(2, {(4, 6): 120 * MB, (1, 7): 30 * MB})
    c3 = Coflow.from_demand(3, {(0, 6): 50 * MB})
    prt, schedules = scheduler.schedule_coflows([c1, c2, c3], BANDWIDTH)

    print("\nAll three Coflows on one Port Reservation Table "
          "(priority order C1 > C2 > C3):\n")
    print(render_timeline(list(prt), width=64))
    for cid, schedule in sorted(schedules.items()):
        truncated = sum(1 for r in schedule.reservations) - len(
            {(r.src, r.dst) for r in schedule.reservations}
        )
        note = f", {truncated} resumed reservation(s)" if truncated else ""
        print(f"  C{cid}: CCT = {schedule.makespan:.3f} s, "
              f"{len(schedule.reservations)} reservation(s){note}")
    print("\nC2's reservation on in.4 is cut short so C1's [in.4, out.5]")
    print("starts on time; C2 resumes afterwards, paying one extra δ.")


if __name__ == "__main__":
    figure_1()
    figure_2()
