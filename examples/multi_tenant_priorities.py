#!/usr/bin/env python
"""Multi-tenant cluster: priority classes and the starvation guard (§4.2).

A privileged tenant submits a huge production backup while a regular
tenant runs small interactive queries on the same input rack.  With strict
priority classes alone, the regular tenant starves until the backup
drains.  Sunflow's (T + τ) starvation guard bounds the regular tenant's
wait to at most N(T + τ) while costing the privileged tenant only the τ
slices.

Run:
    python examples/multi_tenant_priorities.py
"""

from repro import Coflow, StarvationGuard
from repro.core.coflow import CoflowTrace
from repro.sim import simulate_inter_sunflow
from repro.units import GBPS, MB, MS

BANDWIDTH = 1 * GBPS
DELTA = 10 * MS
NUM_PORTS = 8


def build_trace() -> CoflowTrace:
    # Privileged tenant: a 3 GB backup from rack 0 to rack 1.
    backup = Coflow.from_demand(1, {(0, 1): 3000 * MB}, arrival_time=0.0)
    # Regular tenant: interactive queries also sourced at rack 0.
    queries = [
        Coflow.from_demand(2, {(0, 2): 2 * MB}, arrival_time=0.0),
        Coflow.from_demand(3, {(0, 3): 4 * MB}, arrival_time=5.0),
        Coflow.from_demand(4, {(0, 4): 1 * MB}, arrival_time=10.0),
    ]
    return CoflowTrace(num_ports=NUM_PORTS, coflows=[backup] + queries)


def run(label: str, guard: StarvationGuard = None) -> None:
    classes = {1: 0, 2: 1, 3: 1, 4: 1}  # lower class = more privileged
    report = simulate_inter_sunflow(
        build_trace(),
        BANDWIDTH,
        DELTA,
        priority_classes=classes,
        guard=guard,
    ).by_id()
    print(f"\n{label}")
    print(f"  {'coflow':>20} {'class':>6} {'CCT (s)':>9}")
    names = {1: "backup (privileged)", 2: "query A", 3: "query B", 4: "query C"}
    for cid in sorted(report):
        print(f"  {names[cid]:>20} {classes[cid]:>6} {report[cid].cct:>9.2f}")


def main() -> None:
    print("Privileged backup vs regular queries sharing input rack 0")
    print(f"fabric: {NUM_PORTS} ports, B = 1 Gbps, δ = 10 ms")

    run("strict priority classes, no guard (queries starve):")

    guard = StarvationGuard(
        num_ports=NUM_PORTS, period=1.0, tau=0.1, delta=DELTA
    )
    run(
        f"with starvation guard T=1.0s τ=0.1s "
        f"(service gap <= N(T+τ) = {guard.max_service_gap:.1f}s):",
        guard=guard,
    )

    print()
    print("The guard's τ slices round-robin through all N configurations,")
    print("so every circuit — and therefore every tenant — is served within")
    print("one guard cycle, at a small utilization cost to the backup.")


if __name__ == "__main__":
    main()
