#!/usr/bin/env python
"""MapReduce shuffle study: circuit schedulers on one Coflow at a time.

Generates a Facebook-like workload (the paper's §5.1 setting), serves the
Coflows back-to-back, and compares Sunflow against the three prior circuit
schedulers — Solstice, TMS, Edmond — on CCT relative to the theoretical
lower bound and on switching counts (Figures 3 and 5 in miniature).

Run:
    python examples/mapreduce_shuffle.py [--coflows 60] [--delta-ms 10]
"""

import argparse

from repro.schedulers import EdmondScheduler, SolsticeScheduler, TmsScheduler
from repro.sim import (
    mean,
    percentile,
    simulate_intra_assignment,
    simulate_intra_sunflow,
)
from repro.units import GBPS, MS
from repro.workloads import FacebookLikeTraceGenerator, GeneratorConfig, perturb_sizes


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--coflows", type=int, default=60)
    parser.add_argument("--delta-ms", type=float, default=10.0)
    parser.add_argument("--bandwidth-gbps", type=float, default=1.0)
    args = parser.parse_args()

    bandwidth = args.bandwidth_gbps * GBPS
    delta = args.delta_ms * MS

    config = GeneratorConfig(
        num_ports=150, num_coflows=args.coflows, max_width=30, seed=2016
    )
    trace = perturb_sizes(FacebookLikeTraceGenerator(config).generate(), seed=2016)
    print(
        f"workload: {len(trace)} coflows, {trace.total_bytes / 1e9:.1f} GB on "
        f"{trace.num_ports} ports; B = {args.bandwidth_gbps:g} Gbps, "
        f"δ = {args.delta_ms:g} ms"
    )

    reports = {"sunflow": simulate_intra_sunflow(trace, bandwidth, delta)}
    for scheduler in (SolsticeScheduler(), TmsScheduler(), EdmondScheduler()):
        reports[scheduler.name] = simulate_intra_assignment(
            trace, scheduler, bandwidth, delta
        )

    print()
    print(f"{'scheduler':>10} {'CCT/TcL mean':>13} {'CCT/TcL p95':>12} "
          f"{'avg CCT (s)':>12} {'switch/min':>11}")
    for name, report in reports.items():
        ratios = [r.cct_over_circuit_lower for r in report.records]
        switching = [r.normalized_switching for r in report.records]
        print(
            f"{name:>10} {mean(ratios):>13.2f} {percentile(ratios, 95):>12.2f} "
            f"{report.average_cct():>12.2f} {mean(switching):>11.2f}"
        )

    print()
    print("Sunflow holds every circuit exactly once per flow (switch/min = 1)")
    print("and stays within 2x of the circuit-switched lower bound (Lemma 1).")


if __name__ == "__main__":
    main()
